// chipmunk: the command-line front end.
//
//   chipmunk list-fs
//   chipmunk list-bugs
//   chipmunk test <fs> --workload <file> [--bug N ...] [--cap N] [--verbose]
//   chipmunk ace <fs> [--seq N] [--bug N ...] [--limit M] [--cap N]
//   chipmunk fuzz <fs> [--iterations N] [--bug N ...] [--seed S]
//   chipmunk lint <fs>|all [--workload <file> ...] [--bug N ...]
//                 [--json | --sarif]
//   chipmunk analyze <fs>|all|reference [--workload <file> ...] [--bug N ...]
//                 [--invariants FILE | --mine-out FILE] [--min-support N]
//                 [--json | --sarif]
//   chipmunk coordinate <fs> --campaign DIR --workers N [--generator fuzz|ace]
//   chipmunk show <workload-file>
//   chipmunk repro <quarantine-entry-dir> [--sandbox-budget N]
//
// Exit status: 0 = no reports, 1 = bugs reported, 2 = usage/input error,
// 3 = interrupted (SIGTERM/SIGINT drained the run; the store is resumable).
// For repro: 0 = clean recovery or clean failure, 1 = failure reproduced.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/hb.h"
#include "src/analysis/invariants.h"
#include "src/analysis/sarif.h"
#include "src/common/parse.h"
#include "src/common/rng.h"
#include "src/coord/campaign_runner.h"
#include "src/coord/coordinator.h"
#include "src/coord/lease_client.h"
#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/core/quarantine.h"
#include "src/core/sandbox.h"
#include "src/fuzz/ace_engine.h"
#include "src/fuzz/fuzz_engine.h"
#include "src/pmem/fault.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "src/workload/ace.h"
#include "src/workload/serialize.h"
#include "src/workload/triggers.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  chipmunk list-fs\n"
               "  chipmunk list-bugs\n"
               "  chipmunk test <fs> --workload <file> [--bug N ...] "
               "[--cap N] [--jobs N] [--verbose]\n"
               "  chipmunk ace <fs> [--seq N] [--bug N ...] [--limit M] "
               "[--cap N] [--jobs N]\n"
               "                [--fuzz-jobs N] [--campaign DIR] [--resume]\n"
               "                [--shard I/N] [--checkpoint-interval N]\n"
               "  chipmunk fuzz <fs> [--iterations N] [--bug N ...] "
               "[--seed S] [--jobs N]\n"
               "                [--fuzz-jobs N] [--max-ops N] "
               "[--campaign DIR] [--resume]\n"
               "                [--shard I/N] [--checkpoint-interval N]\n"
               "                [--threads N] [--schedule-seed S]\n"
               "  chipmunk coordinate <fs> --campaign DIR --workers N\n"
               "                [--generator fuzz|ace] [--lease-size N]\n"
               "                [--heartbeat-ms N] [--max-lease-failures N]\n"
               "                [generator flags ...]\n"
               "  chipmunk campaign stats <dir> [--follow]\n"
               "  chipmunk campaign merge <dest-dir> <shard-dir> "
               "[<shard-dir> ...]\n"
               "  chipmunk lint <fs>|all [--workload <file> ...] "
               "[--bug N ...] [--json | --sarif]\n"
               "  chipmunk analyze <fs>|all|reference [--workload <file> ...] "
               "[--bug N ...]\n"
               "                [--invariants FILE | --mine-out FILE] "
               "[--min-support N]\n"
               "                [--json | --sarif]\n"
               "  chipmunk show <workload-file>\n"
               "  chipmunk repro <quarantine-entry-dir> [--sandbox-budget N] "
               "[--jobs N]\n"
               "\n"
               "--jobs N shards crash-state replay across N worker threads\n"
               "(0 = one per hardware thread); results are identical for\n"
               "every value. --fuzz-jobs N additionally pipelines the ace\n"
               "or fuzz campaign loop itself across N workers (same\n"
               "determinism guarantee); --max-ops N caps syscalls per fuzz\n"
               "workload (N >= 1).\n"
               "--cap N caps replayed crash states per fence window; 0 =\n"
               "exhaustive. Unset, test/ace replay exhaustively and\n"
               "fuzz/repro default to the paper's cap of 2 (§4.2).\n"
               "lint statically checks recorded persistence traces (no\n"
               "replay); default workloads are the bundled trigger set.\n"
               "analyze runs the happens-before durability analyzer: it\n"
               "mines persistence-ordering invariants from the bug-free\n"
               "twin of each target (or loads them with --invariants FILE)\n"
               "and reports ordering violations; --mine-out FILE saves the\n"
               "mined set (single <fs> target only), --min-support N sets\n"
               "the mining support threshold (default 1).\n"
               "test/ace accept --lint (merge lint findings into reports),\n"
               "--prune (drop no-op writes from replay enumeration), and\n"
               "--prefix-only (ordered-persistency ablation).\n"
               "\n"
               "Replay options (test/ace/fuzz):\n"
               "  --targeted          visit each fence window's crash states\n"
               "                      in violation-first order: states that\n"
               "                      stage an ordering violation flagged by\n"
               "                      an HB finding or invariant violation\n"
               "                      (--invariants FILE) mount first. Pure\n"
               "                      reordering: with no budget/cutoff the\n"
               "                      reports are bit-identical to the\n"
               "                      default order; incompatible with\n"
               "                      --inject-faults\n"
               "  --invariants FILE   mined-invariant set (chipmunk analyze\n"
               "                      --mine-out) to check and steer\n"
               "                      --targeted with\n"
               "  --representative    mount one representative crash state\n"
               "                      per page-signature class at each fence\n"
               "                      (heuristic pruning; default is\n"
               "                      exhaustive); incompatible with\n"
               "                      --inject-faults\n"
               "  --no-cow            materialize crash states as full deep\n"
               "                      copies instead of page-granular\n"
               "                      copy-on-write overlays (A/B\n"
               "                      benchmarking only; results are\n"
               "                      bit-identical either way)\n"
               "\n"
               "Concurrency options (ace/fuzz generate, test honors files):\n"
               "  --threads N         generate N-thread workloads (1..8;\n"
               "                      default 1 = classic single-threaded\n"
               "                      streams, byte-identical to runs without\n"
               "                      the flag); the realized interleaving is\n"
               "                      decided at generation time, so replay\n"
               "                      stays deterministic; incompatible with\n"
               "                      --inject-faults\n"
               "  --schedule-seed S   seed for realized interleavings\n"
               "                      (campaign identity together with\n"
               "                      --threads; default 0)\n"
               "  --isolation-window N  per-thread in-flight window the\n"
               "                      linearization oracle considers\n"
               "                      (default 4)\n"
               "  --no-isolation-oracle  skip building linearization images\n"
               "                      for multi-threaded workloads (A/B\n"
               "                      measurement only: cross-thread\n"
               "                      atomicity violations go undetected)\n"
               "\n"
               "Robustness options (test/ace/fuzz):\n"
               "  --sandbox-budget N  media-op budget per sandboxed recovery\n"
               "                      (0 disables the watchdog; default 1M)\n"
               "  --inject-faults     seeded PM media faults on crash states\n"
               "                      (torn stores, bit flips, read poison);\n"
               "                      verdict becomes fail-cleanly-or-recover;\n"
               "                      incompatible with --prefix-only\n"
               "  --quarantine DIR    serialize recovery failures to DIR for\n"
               "                      offline triage with `chipmunk repro`\n"
               "repro remounts a quarantined crash state (or re-runs a\n"
               "quarantined workload) under the sandbox; exit 1 means the\n"
               "failure reproduced.\n"
               "\n"
               "Campaign options (ace/fuzz):\n"
               "  --campaign DIR      persist the run as a resumable campaign\n"
               "                      store in DIR (crash-safe append log +\n"
               "                      checkpoints + crash-state dedup index)\n"
               "  --resume            resume an interrupted campaign in DIR;\n"
               "                      the finished result is identical to an\n"
               "                      uninterrupted run\n"
               "  --shard I/N         run shard I of N (ordinal range\n"
               "                      [iters*I/N, iters*(I+1)/N)); merge the\n"
               "                      shard stores with `campaign merge`\n"
               "  --checkpoint-interval N  commits between compacting\n"
               "                      checkpoints (default 64, 0 = only at\n"
               "                      the end)\n"
               "campaign stats summarizes a store; campaign merge folds\n"
               "shard stores of one campaign — or different campaigns (e.g.\n"
               "an ace sweep + a fuzz run) against the same fs/bugs/device —\n"
               "into one (reports deduped by signature, per-signature hit\n"
               "counts summed).\n"
               "\n"
               "Coordinator options (coordinate; ace/fuzz where noted):\n"
               "  --workers N         worker processes to spawn and supervise\n"
               "                      (N >= 1); dead workers restart with\n"
               "                      capped exponential backoff\n"
               "  --generator G       fuzz (default) or ace: the campaign the\n"
               "                      workers run\n"
               "  --lease-size N      ordinals per lease (default 32; also a\n"
               "                      local ace/fuzz mode: partition the\n"
               "                      campaign into per-lease stores under\n"
               "                      --campaign DIR and fold them — the\n"
               "                      single-process determinism baseline for\n"
               "                      a coordinated run)\n"
               "  --heartbeat-ms N    silence after which a worker's lease is\n"
               "                      revoked and reissued (default 5000)\n"
               "  --max-lease-failures N  failed grants before a lease is\n"
               "                      poisoned and its workloads quarantined\n"
               "                      (default 3)\n"
               "Remaining flags are forwarded to the workers verbatim.\n"
               "A SIGTERM/SIGINT drains: ace/fuzz finish in-flight workloads\n"
               "through the commit barrier and checkpoint (exit 3); the\n"
               "coordinator stops granting, waits for in-flight leases, folds\n"
               "what is complete, and exits 3.\n"
               "campaign stats <root> [--follow] of a live coordinated\n"
               "campaign reports per-worker lease/heartbeat/restart counts\n"
               "over the coordinator socket (--follow keeps watching until\n"
               "the coordinator exits).\n");
  return 2;
}

struct Args {
  std::string fs;
  std::vector<std::string> workload_files;
  vfs::BugSet bugs;
  size_t cap = 0;
  bool cap_set = false;  // fuzz/repro keep their default cap of 2 when unset
  int seq = 1;
  uint64_t limit = 0;
  size_t iterations = 1000;
  uint64_t seed = 1;
  size_t jobs = 1;
  size_t fuzz_jobs = 1;
  size_t max_ops = 10;
  uint64_t sandbox_budget = 1'000'000;
  bool sandbox_budget_set = false;  // repro defaults to the entry's budget
  bool inject_faults = false;
  bool cow = true;
  bool representative = false;
  bool targeted = false;
  std::string invariants_file;
  std::string mine_out;
  uint32_t min_support = 1;
  std::string quarantine_dir;
  bool prefix_only = false;
  bool verbose = false;
  bool lint = false;
  bool prune = false;
  bool json = false;
  bool sarif = false;
  std::string campaign_dir;
  bool resume = false;
  size_t shard_index = 0;
  size_t shard_count = 1;
  size_t checkpoint_interval = 64;
  // Lease-partitioned execution: worker mode (--lease-from points at a
  // coordinator's campaign root) or local mode (--lease-size partitions a
  // --campaign run into per-lease stores and folds them).
  std::string lease_from;
  uint32_t worker_slot = 0;
  uint64_t lease_size = 0;  // 0 = unset
  size_t workers = 0;       // coordinate only; 0 = unset
  uint64_t heartbeat_ms = 5000;
  size_t max_lease_failures = 3;
  std::string generator = "fuzz";
  // Concurrent workloads: worker threads per generated workload (1 =
  // classic single-threaded streams, byte-identical to the pre-concurrency
  // engine) and the seed that fixes every realized interleaving. Both are
  // campaign identity. The isolation oracle is what makes multi-threaded
  // verdicts sound; --no-isolation-oracle exists for A/B measurement only.
  size_t threads = 1;
  uint64_t schedule_seed = 0;
  bool isolation_oracle = true;
  size_t isolation_window = 4;
};

// Strict decimal parsing for flag values: rejects empty strings, signs
// (negative values included), non-digit garbage, and overflow of the target
// range — std::atoi/strtoul silently accept all four. The shared
// common::ParseUint64 does the character/range work; this wrapper owns the
// per-flag diagnostics.
bool ParseUint(const std::string& flag, const char* value, uint64_t max,
               uint64_t* out) {
  if (value == nullptr || *value == '\0') {
    std::fprintf(stderr, "%s requires a non-negative integer\n", flag.c_str());
    return false;
  }
  if (!common::ParseUint64(value, max, out)) {
    // Distinguish garbage from overflow for the error message.
    uint64_t unbounded = 0;
    if (common::ParseUint64(value, std::numeric_limits<uint64_t>::max(),
                            &unbounded)) {
      std::fprintf(stderr, "%s: '%s' exceeds the maximum %llu\n", flag.c_str(),
                   value, static_cast<unsigned long long>(max));
    } else {
      std::fprintf(stderr, "%s: '%s' is not a non-negative integer\n",
                   flag.c_str(), value);
    }
    return false;
  }
  return true;
}

bool ParseSize(const std::string& flag, const char* value, size_t* out) {
  uint64_t parsed = 0;
  if (!ParseUint(flag, value, std::numeric_limits<size_t>::max(), &parsed)) {
    return false;
  }
  *out = static_cast<size_t>(parsed);
  return true;
}

bool ParseCommon(int argc, char** argv, int start, Args& args) {
  for (int i = start; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--workload") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args.workload_files.push_back(value);
    } else if (flag == "--bug") {
      uint64_t id = 0;
      if (!ParseUint(flag, next(), std::numeric_limits<int>::max(), &id)) {
        return false;
      }
      if (vfs::FindBug(static_cast<vfs::BugId>(id)) == nullptr) {
        std::fprintf(stderr, "unknown bug id %llu (see list-bugs)\n",
                     static_cast<unsigned long long>(id));
        return false;
      }
      args.bugs.Enable(static_cast<vfs::BugId>(id));
    } else if (flag == "--cap") {
      if (!ParseSize(flag, next(), &args.cap)) {
        return false;
      }
      args.cap_set = true;
    } else if (flag == "--seq") {
      uint64_t seq = 0;
      if (!ParseUint(flag, next(), std::numeric_limits<int>::max(), &seq)) {
        return false;
      }
      args.seq = static_cast<int>(seq);
    } else if (flag == "--limit") {
      if (!ParseUint(flag, next(), std::numeric_limits<uint64_t>::max(),
                     &args.limit)) {
        return false;
      }
    } else if (flag == "--iterations") {
      if (!ParseSize(flag, next(), &args.iterations)) {
        return false;
      }
    } else if (flag == "--seed") {
      if (!ParseUint(flag, next(), std::numeric_limits<uint64_t>::max(),
                     &args.seed)) {
        return false;
      }
    } else if (flag == "--jobs") {
      if (!ParseSize(flag, next(), &args.jobs)) {
        return false;
      }
    } else if (flag == "--fuzz-jobs") {
      if (!ParseSize(flag, next(), &args.fuzz_jobs)) {
        return false;
      }
    } else if (flag == "--max-ops") {
      if (!ParseSize(flag, next(), &args.max_ops)) {
        return false;
      }
      if (args.max_ops == 0) {
        std::fprintf(stderr, "--max-ops must be at least 1\n");
        return false;
      }
    } else if (flag == "--sandbox-budget") {
      if (!ParseUint(flag, next(), std::numeric_limits<uint64_t>::max(),
                     &args.sandbox_budget)) {
        return false;
      }
      args.sandbox_budget_set = true;
    } else if (flag == "--threads") {
      uint64_t threads = 0;
      if (!ParseUint(flag, next(), 8, &threads)) {
        return false;
      }
      if (threads == 0) {
        std::fprintf(stderr,
                     "--threads must be at least 1 (1 = classic "
                     "single-threaded workloads)\n");
        return false;
      }
      args.threads = static_cast<size_t>(threads);
    } else if (flag == "--schedule-seed") {
      if (!ParseUint(flag, next(), std::numeric_limits<uint64_t>::max(),
                     &args.schedule_seed)) {
        return false;
      }
    } else if (flag == "--no-isolation-oracle") {
      args.isolation_oracle = false;
    } else if (flag == "--isolation-window") {
      if (!ParseSize(flag, next(), &args.isolation_window)) {
        return false;
      }
      if (args.isolation_window == 0) {
        std::fprintf(stderr, "--isolation-window must be at least 1\n");
        return false;
      }
    } else if (flag == "--inject-faults") {
      args.inject_faults = true;
    } else if (flag == "--no-cow") {
      args.cow = false;
    } else if (flag == "--representative") {
      args.representative = true;
    } else if (flag == "--targeted") {
      args.targeted = true;
    } else if (flag == "--invariants") {
      const char* value = next();
      if (value == nullptr || *value == '\0') {
        std::fprintf(stderr, "--invariants requires a file\n");
        return false;
      }
      args.invariants_file = value;
    } else if (flag == "--mine-out") {
      const char* value = next();
      if (value == nullptr || *value == '\0') {
        std::fprintf(stderr, "--mine-out requires a file\n");
        return false;
      }
      args.mine_out = value;
    } else if (flag == "--min-support") {
      uint64_t support = 0;
      if (!ParseUint(flag, next(), std::numeric_limits<uint32_t>::max(),
                     &support)) {
        return false;
      }
      if (support == 0) {
        std::fprintf(stderr, "--min-support must be at least 1\n");
        return false;
      }
      args.min_support = static_cast<uint32_t>(support);
    } else if (flag == "--quarantine") {
      const char* value = next();
      if (value == nullptr || *value == '\0') {
        std::fprintf(stderr, "--quarantine requires a directory\n");
        return false;
      }
      args.quarantine_dir = value;
    } else if (flag == "--campaign") {
      const char* value = next();
      if (value == nullptr || *value == '\0') {
        std::fprintf(stderr, "--campaign requires a directory\n");
        return false;
      }
      args.campaign_dir = value;
    } else if (flag == "--resume") {
      args.resume = true;
    } else if (flag == "--shard") {
      const char* value = next();
      std::string spec = value == nullptr ? "" : value;
      const size_t slash = spec.find('/');
      uint64_t index = 0;
      uint64_t count = 0;
      if (slash == std::string::npos ||
          !common::ParseUint64(spec.substr(0, slash),
                               std::numeric_limits<size_t>::max(), &index) ||
          !common::ParseUint64(spec.substr(slash + 1),
                               std::numeric_limits<size_t>::max(), &count) ||
          count == 0 || index >= count) {
        std::fprintf(stderr,
                     "--shard: '%s' is not I/N with 0 <= I < N\n",
                     spec.c_str());
        return false;
      }
      args.shard_index = static_cast<size_t>(index);
      args.shard_count = static_cast<size_t>(count);
    } else if (flag == "--checkpoint-interval") {
      if (!ParseSize(flag, next(), &args.checkpoint_interval)) {
        return false;
      }
    } else if (flag == "--lease-from") {
      const char* value = next();
      if (value == nullptr || *value == '\0') {
        std::fprintf(stderr, "--lease-from requires a directory\n");
        return false;
      }
      args.lease_from = value;
    } else if (flag == "--worker-slot") {
      uint64_t slot = 0;
      if (!ParseUint(flag, next(), std::numeric_limits<uint32_t>::max(),
                     &slot)) {
        return false;
      }
      args.worker_slot = static_cast<uint32_t>(slot);
    } else if (flag == "--lease-size") {
      if (!ParseUint(flag, next(), std::numeric_limits<uint64_t>::max(),
                     &args.lease_size)) {
        return false;
      }
      if (args.lease_size == 0) {
        std::fprintf(stderr, "--lease-size must be at least 1\n");
        return false;
      }
    } else if (flag == "--workers") {
      if (!ParseSize(flag, next(), &args.workers)) {
        return false;
      }
      if (args.workers == 0) {
        std::fprintf(stderr, "--workers must be at least 1\n");
        return false;
      }
    } else if (flag == "--heartbeat-ms") {
      if (!ParseUint(flag, next(), std::numeric_limits<uint64_t>::max(),
                     &args.heartbeat_ms)) {
        return false;
      }
      if (args.heartbeat_ms == 0) {
        std::fprintf(stderr, "--heartbeat-ms must be at least 1\n");
        return false;
      }
    } else if (flag == "--max-lease-failures") {
      if (!ParseSize(flag, next(), &args.max_lease_failures)) {
        return false;
      }
      if (args.max_lease_failures == 0) {
        std::fprintf(stderr, "--max-lease-failures must be at least 1\n");
        return false;
      }
    } else if (flag == "--generator") {
      const char* value = next();
      const std::string gen = value == nullptr ? "" : value;
      if (gen != "fuzz" && gen != "ace") {
        std::fprintf(stderr, "--generator must be 'fuzz' or 'ace'\n");
        return false;
      }
      args.generator = gen;
    } else if (flag == "--prefix-only") {
      args.prefix_only = true;
    } else if (flag == "--verbose") {
      args.verbose = true;
    } else if (flag == "--lint") {
      args.lint = true;
    } else if (flag == "--prune") {
      args.prune = true;
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--sarif") {
      args.sarif = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  if (args.inject_faults && args.prefix_only) {
    std::fprintf(stderr,
                 "--inject-faults cannot be combined with --prefix-only: the "
                 "ordered-persistency ablation replays prefixes only and has "
                 "no crash boundary to tear\n");
    return false;
  }
  if (args.representative && args.inject_faults) {
    std::fprintf(stderr,
                 "--representative cannot be combined with --inject-faults: "
                 "fault decisions are keyed by state ordinal, so two states "
                 "with the same page signature see different faults and are "
                 "not equivalent\n");
    return false;
  }
  if (args.targeted && args.inject_faults) {
    std::fprintf(stderr,
                 "--targeted cannot be combined with --inject-faults: fault "
                 "decisions are keyed by state visitation ordinal, so "
                 "reordering the visitation would change which faults land "
                 "on which states\n");
    return false;
  }
  if (args.threads > 1 && args.inject_faults) {
    std::fprintf(stderr,
                 "--threads cannot be combined with --inject-faults: fault "
                 "decisions are keyed by crash-state ordinal, but the "
                 "isolation oracle re-runs linearization images on a clean "
                 "device, so the two verdicts would disagree about what a "
                 "legal post-crash state is\n");
    return false;
  }
  if (args.campaign_dir.empty() &&
      (args.resume || args.shard_count != 1)) {
    std::fprintf(stderr, "--resume and --shard require --campaign DIR\n");
    return false;
  }
  if (!args.lease_from.empty() &&
      (!args.campaign_dir.empty() || args.resume || args.shard_count != 1 ||
       args.lease_size > 0)) {
    std::fprintf(stderr,
                 "--lease-from is exclusive with --campaign, --resume, "
                 "--shard, and --lease-size: the coordinator owns the store "
                 "layout and the lease ranges\n");
    return false;
  }
  if (args.lease_size > 0 && args.lease_from.empty() &&
      args.campaign_dir.empty()) {
    std::fprintf(stderr, "--lease-size requires --campaign DIR\n");
    return false;
  }
  if (args.lease_size > 0 && (args.resume || args.shard_count != 1)) {
    std::fprintf(stderr,
                 "--lease-size is exclusive with --resume and --shard: lease "
                 "stores resume themselves and already partition the "
                 "campaign\n");
    return false;
  }
  return true;
}

// Graceful stop for ace/fuzz runs (standalone and lease workers): the first
// SIGTERM/SIGINT flips the flag the campaign driver polls — in-flight
// workloads drain through the commit barrier and a final checkpoint is
// written (exit 3). The handler then restores the default disposition so a
// second signal kills a stuck run outright.
std::atomic<bool> g_stop{false};

void OnStopSignal(int /*sig*/) {
  g_stop.store(true, std::memory_order_relaxed);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
}

void InstallStopHandlers() {
  std::signal(SIGTERM, OnStopSignal);
  std::signal(SIGINT, OnStopSignal);
}

// Runs an ace/fuzz campaign as a sequence of ordinal leases: against a
// coordinator (--lease-from) or as a single-process partition (--lease-size,
// the determinism baseline for a coordinated run — same lease stores, same
// fold). `total` is the resolved campaign ordinal count.
int RunLeaseMode(const Args& args, const fuzz::CampaignOptions& base_options,
                 uint64_t total,
                 const std::function<std::unique_ptr<fuzz::CampaignDriver>(
                     const fuzz::CampaignOptions&)>& make_driver) {
  InstallStopHandlers();
  coord::LeaseRunnerOptions runner;
  runner.base = base_options;
  runner.base.campaign_dir.clear();  // the runner names each lease store
  runner.base.stop = &g_stop;
  runner.make_driver = make_driver;

  std::unique_ptr<coord::LeaseScheduler> remote;
  std::unique_ptr<fuzz::LocalScheduler> local;
  fuzz::OrdinalScheduler* scheduler = nullptr;
  if (!args.lease_from.empty()) {
    runner.root = args.lease_from;
    auto connected = coord::LeaseScheduler::Connect(
        coord::SocketPath(args.lease_from), args.worker_slot,
        args.heartbeat_ms);
    if (!connected.ok()) {
      std::fprintf(stderr, "worker: %s\n",
                   connected.status().ToString().c_str());
      return 2;
    }
    remote = std::move(*connected);
    scheduler = remote.get();
  } else {
    runner.root = args.campaign_dir;
    local = std::make_unique<fuzz::LocalScheduler>(total, args.lease_size);
    scheduler = local.get();
  }

  auto ran = coord::RunLeases(*scheduler, runner);
  if (!ran.ok()) {
    std::fprintf(stderr, "leases: %s\n", ran.status().ToString().c_str());
    return 2;
  }
  std::printf("leases: ran %zu lease(s), %zu resumed from partial stores\n",
              ran->leases_run, ran->leases_resumed);
  bool reported = false;
  if (local != nullptr && !ran->interrupted) {
    auto folded = coord::FoldLeases(runner.root, total);
    if (!folded.ok()) {
      std::fprintf(stderr, "fold: %s\n", folded.status().ToString().c_str());
      return 2;
    }
    std::printf("folded into %s: %zu unique report(s), %zu indexed crash "
                "state(s)\n",
                coord::MergedDir(runner.root).c_str(),
                folded->state.unique_reports.size(), folded->index.size());
    for (const chipmunk::BugReport& r : folded->state.unique_reports) {
      if (r.kind != chipmunk::CheckKind::kRecoveryFailure) {
        reported = true;
      }
    }
  }
  if (ran->interrupted) {
    std::printf("interrupted: in-flight workloads drained and checkpointed; "
                "rerun the same command to continue\n");
    return 3;
  }
  return reported ? 1 : 0;
}

// Loads a mined-invariant set written by `chipmunk analyze --mine-out`.
bool LoadInvariants(const std::string& file, analysis::InvariantSet* out) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "--invariants: cannot open %s\n", file.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = analysis::ParseInvariants(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "--invariants: %s: %s\n", file.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  *out = std::move(*parsed);
  return true;
}

common::StatusOr<workload::Workload> LoadWorkload(const std::string& file) {
  std::ifstream in(file);
  if (!in) {
    return common::NotFound("cannot open " + file);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return workload::ParseWorkload(buffer.str(), file);
}

int CmdListFs() {
  for (const std::string& name : chipmunk::RegisteredFsNames()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int CmdListBugs() {
  std::printf("%-4s %-14s %-6s %-12s %s\n", "id", "fs", "type", "fuzzer-only",
              "consequence");
  for (const vfs::BugInfo& info : vfs::AllBugs()) {
    std::printf("%-4d %-14s %-6s %-12s %s\n", static_cast<int>(info.id),
                info.fs, info.type == vfs::BugType::kLogic ? "logic" : "pm",
                info.fuzzer_only ? "yes" : "no", info.consequence);
  }
  return 0;
}

int CmdShow(const std::string& file) {
  auto w = LoadWorkload(file);
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 2;
  }
  std::printf("%s", workload::Serialize(*w).c_str());
  return 0;
}

int ReportAndExit(const std::vector<chipmunk::BugReport>& reports) {
  for (const chipmunk::BugReport& report : reports) {
    std::printf("%s\n\n", report.ToString().c_str());
  }
  std::printf("%zu unique report(s)\n", reports.size());
  return reports.empty() ? 0 : 1;
}

// The robustness knobs shared by test/ace/fuzz. `invariants` is the
// caller-owned set backing options.invariants — it must outlive the harness.
bool ApplyRobustnessOptions(const Args& args,
                            chipmunk::HarnessOptions& options,
                            analysis::InvariantSet* invariants) {
  options.sandbox_op_budget = args.sandbox_budget;
  options.quarantine_dir = args.quarantine_dir;
  options.cow_images = args.cow;
  options.representative = args.representative;
  options.targeted = args.targeted;
  options.isolation_oracle = args.isolation_oracle;
  options.isolation_window = args.isolation_window;
  if (!args.invariants_file.empty()) {
    if (!LoadInvariants(args.invariants_file, invariants)) {
      return false;
    }
    options.invariants = invariants;
  }
  if (args.inject_faults) {
    options.fault_plan = pmem::FaultPlan::All(args.seed);
  }
  return true;
}

int CmdTest(const Args& args) {
  auto config = chipmunk::MakeFsConfig(args.fs, args.bugs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }
  chipmunk::HarnessOptions options;
  options.replay_cap = args.cap;  // unset = 0 = exhaustive replay
  options.jobs = args.jobs;
  options.lint = args.lint;
  options.prune_noop_fences = args.prune;
  options.prefix_only = args.prefix_only;
  analysis::InvariantSet invariants;
  if (!ApplyRobustnessOptions(args, options, &invariants)) {
    return 2;
  }
  chipmunk::Harness harness(*config, options);
  std::vector<chipmunk::BugReport> all;
  for (const std::string& file : args.workload_files) {
    auto w = LoadWorkload(file);
    if (!w.ok()) {
      std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
      return 2;
    }
    auto stats = harness.TestWorkload(*w);
    if (!stats.ok()) {
      std::fprintf(stderr, "harness: %s\n", stats.status().ToString().c_str());
      return 2;
    }
    if (args.verbose) {
      std::printf("%s: %llu crash states, %llu pruned, %zu report(s)\n",
                  file.c_str(),
                  static_cast<unsigned long long>(stats->crash_states),
                  static_cast<unsigned long long>(stats->states_pruned),
                  stats->reports.size());
    }
    for (const std::string& entry : stats->quarantined) {
      std::printf("quarantined: %s\n", entry.c_str());
    }
    all.insert(all.end(), stats->reports.begin(), stats->reports.end());
  }
  return ReportAndExit(all);
}

int CmdAce(const Args& args) {
  auto config = chipmunk::MakeFsConfig(args.fs, args.bugs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }
  workload::AceOptions ace;
  ace.seq = args.seq;
  ace.metadata_only = args.seq >= 3;
  ace.weak_mode = args.fs == "ext4dax" || args.fs == "xfsdax";

  fuzz::CampaignOptions options;
  options.jobs = args.fuzz_jobs;
  options.lint = args.lint;
  // --limit caps the sweep; AceEngine resolves 0 (and anything past the
  // enumeration size) to the full sweep.
  options.iterations = args.limit;
  options.harness.replay_cap = args.cap;
  options.harness.jobs = args.jobs;
  options.harness.prune_noop_fences = args.prune;
  options.harness.prefix_only = args.prefix_only;
  analysis::InvariantSet invariants;
  if (!ApplyRobustnessOptions(args, options.harness, &invariants)) {
    return 2;
  }
  options.invariants_path = args.invariants_file;
  options.campaign_dir = args.campaign_dir;
  options.resume = args.resume;
  options.shard_index = args.shard_index;
  options.shard_count = args.shard_count;
  options.checkpoint_interval = args.checkpoint_interval;
  options.threads = args.threads;
  options.schedule_seed = args.schedule_seed;

  if (!args.lease_from.empty() || args.lease_size > 0) {
    uint64_t total = workload::AceWorkloadCount(ace);
    if (args.limit != 0 && args.limit < total) {
      total = args.limit;
    }
    options.iterations = static_cast<size_t>(total);
    auto make_driver = [config = *config,
                        ace](const fuzz::CampaignOptions& opt) {
      return std::unique_ptr<fuzz::CampaignDriver>(
          new fuzz::AceEngine(config, opt, ace));
    };
    return RunLeaseMode(args, options, total, make_driver);
  }

  options.stop = &g_stop;
  InstallStopHandlers();
  fuzz::AceEngine engine(*config, options, ace);
  common::Status opened = engine.OpenCampaign();
  if (!opened.ok()) {
    std::fprintf(stderr, "campaign: %s\n", opened.ToString().c_str());
    return 2;
  }
  fuzz::CampaignResult result = engine.Run();
  if (result.states_pruned != 0) {
    std::printf("ran %zu workloads, %zu crash states (%zu pruned)\n",
                result.executed, result.crash_states, result.states_pruned);
  } else {
    std::printf("ran %zu workloads, %zu crash states\n", result.executed,
                result.crash_states);
  }
  if (result.replay_failures != 0) {
    // A harness failure used to be swallowed silently; every one is now
    // counted, quarantined after the retry, and surfaced here.
    std::printf("failures: %zu replay failure(s), %zu retried, "
                "%zu workload(s) quarantined\n",
                result.replay_failures, result.replay_retries,
                result.workloads_quarantined);
  }
  if (engine.campaign_open()) {
    // Deterministic (a pure function of the schedule), so resumed and
    // uninterrupted runs print the same line.
    std::printf("dedup: %zu of %zu crash state(s) skipped via the campaign "
                "index\n",
                result.states_deduped, result.crash_states);
  }
  std::printf("time: wall %.2fs, cpu %.2fs\n", result.wall_seconds,
              result.cpu_seconds);
  if (args.lint) {
    std::printf("lint: %zu finding(s)", result.lint_findings);
    for (const auto& [rule, count] : result.lint_rule_counts) {
      std::printf(" %s=%zu", rule.c_str(), count);
    }
    std::printf("\n");
  }
  uint64_t total_hits = 0;
  for (const auto& [sig, hits] : result.report_hits) {
    total_hits += hits;
  }
  for (const chipmunk::BugReport& report : result.unique_reports) {
    auto it = result.report_hits.find(report.Signature());
    const uint64_t hits = it == result.report_hits.end() ? 1 : it->second;
    std::printf("%s\nseen %llu time(s)\n\n", report.ToString().c_str(),
                static_cast<unsigned long long>(hits));
  }
  std::printf("%zu unique report(s), %llu total hit(s)\n",
              result.unique_reports.size(),
              static_cast<unsigned long long>(total_hits));
  if (result.interrupted) {
    std::printf("interrupted: in-flight workloads drained and checkpointed; "
                "continue with --resume\n");
    return 3;
  }
  // Exit codes: every workload erroring out is an input/setup problem (2),
  // kRecoveryFailure alone is a quarantined robustness finding (0, matching
  // fuzz), anything else is a bug report (1).
  if (result.executed > 0 &&
      result.workloads_quarantined == result.executed) {
    std::fprintf(stderr, "ace: every workload failed to execute\n");
    return 2;
  }
  for (const chipmunk::BugReport& r : result.unique_reports) {
    if (r.kind != chipmunk::CheckKind::kRecoveryFailure) {
      return 1;
    }
  }
  return 0;
}

int CmdFuzz(const Args& args) {
  // The reference FS is a legal fuzz target (the known-clean baseline for
  // smoke runs) even though it is not a registered PM file system.
  auto config = args.fs == "reference"
                    ? common::StatusOr<chipmunk::FsConfig>(
                          chipmunk::MakeReferenceConfig())
                    : chipmunk::MakeFsConfig(args.fs, args.bugs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }
  fuzz::FuzzOptions options;
  options.seed = args.seed;
  options.iterations = args.iterations;
  options.max_ops = args.max_ops;
  options.jobs = args.fuzz_jobs;
  // --cap 0 is a real request (exhaustive replay), not "keep the default":
  // only an unset flag leaves the paper's cap of 2 in place.
  if (args.cap_set) {
    options.harness.replay_cap = args.cap;
  }
  options.harness.jobs = args.jobs;
  analysis::InvariantSet invariants;
  if (!ApplyRobustnessOptions(args, options.harness, &invariants)) {
    return 2;
  }
  options.invariants_path = args.invariants_file;
  options.campaign_dir = args.campaign_dir;
  options.resume = args.resume;
  options.shard_index = args.shard_index;
  options.shard_count = args.shard_count;
  options.checkpoint_interval = args.checkpoint_interval;
  options.threads = args.threads;
  options.schedule_seed = args.schedule_seed;

  if (!args.lease_from.empty() || args.lease_size > 0) {
    auto make_driver = [config = *config](const fuzz::CampaignOptions& opt) {
      return std::unique_ptr<fuzz::CampaignDriver>(
          new fuzz::FuzzEngine(config, opt));
    };
    return RunLeaseMode(args, options, args.iterations, make_driver);
  }

  options.stop = &g_stop;
  InstallStopHandlers();
  fuzz::FuzzEngine fuzzer(*config, options);
  common::Status opened = fuzzer.OpenCampaign();
  if (!opened.ok()) {
    std::fprintf(stderr, "campaign: %s\n", opened.ToString().c_str());
    return 2;
  }
  fuzz::FuzzResult result = fuzzer.Run();
  std::printf("executed %zu workloads, %zu crash states, corpus %zu, "
              "%zu coverage points\n",
              result.executed, result.crash_states, result.corpus_size,
              result.coverage_points);
  if (args.representative) {
    std::printf("pruned: %zu of %zu crash state(s) skipped as "
                "non-representative class members\n",
                result.states_pruned, result.crash_states);
  }
  if (fuzzer.campaign_open()) {
    // Deterministic (a pure function of the schedule), so resumed and
    // uninterrupted runs print the same line.
    std::printf("dedup: %zu of %zu crash state(s) skipped via the campaign "
                "index\n",
                result.states_deduped, result.crash_states);
  }
  // Wall vs CPU are distinct on purpose: wall shrinks with more workers, CPU
  // (aggregated across every worker thread) stays comparable across job
  // counts. The "time:" prefix lets scripted determinism checks strip the
  // only nondeterministic line.
  std::printf("time: wall %.2fs, cpu %.2fs\n", result.wall_seconds,
              result.cpu_seconds);
  std::printf("lint: %zu finding(s)", result.lint_findings);
  for (const auto& [rule, count] : result.lint_rule_counts) {
    std::printf(" %s=%zu", rule.c_str(), count);
  }
  std::printf("\n");
  std::printf("hb: %zu finding(s)", result.hb_findings);
  for (const auto& [rule, count] : result.hb_rule_counts) {
    std::printf(" %s=%zu", rule.c_str(), count);
  }
  std::printf("\n");
  std::printf("robustness: %zu replay failure(s), %zu retried, "
              "%zu workload(s) quarantined, %zu crash state(s) quarantined\n",
              result.replay_failures, result.replay_retries,
              result.workloads_quarantined, result.states_quarantined);
  for (const fuzz::ReportCluster& cluster : result.clusters) {
    std::printf("--- cluster (%zu reports) ---\n%s\n\n",
                cluster.members.size(),
                cluster.representative.ToString().c_str());
  }
  if (result.interrupted) {
    std::printf("interrupted: in-flight workloads drained and checkpointed; "
                "continue with --resume\n");
    return 3;
  }
  // Recovery-failure reports are robustness findings: the failing state or
  // workload is quarantined above for offline triage (`chipmunk repro`), and
  // the campaign itself completed — so they do not fail the run. Everything
  // else (consistency divergence, OOB, ...) still exits 1.
  for (const chipmunk::BugReport& r : result.unique_reports) {
    if (r.kind != chipmunk::CheckKind::kRecoveryFailure) {
      return 1;
    }
  }
  return 0;
}

// The chipmunk executable path for spawning workers: /proc/self/exe when
// available (robust against a relative argv[0] + chdir), argv[0] otherwise.
std::string SelfExe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

// chipmunk coordinate <fs> --campaign DIR --workers N [--generator fuzz|ace]:
// runs the fault-tolerant campaign coordinator over a fleet of worker
// processes. Generator flags in the tail are forwarded to the workers
// verbatim; coordinator-only flags are stripped.
int CmdCoordinate(const Args& args, int argc, char** argv) {
  if (args.campaign_dir.empty()) {
    std::fprintf(stderr, "coordinate requires --campaign DIR\n");
    return 2;
  }
  if (args.workers == 0) {
    std::fprintf(stderr, "coordinate requires --workers N (N >= 1)\n");
    return 2;
  }
  if (!args.lease_from.empty() || args.resume || args.shard_count != 1) {
    std::fprintf(stderr,
                 "coordinate does not accept --lease-from, --resume, or "
                 "--shard\n");
    return 2;
  }
  auto config = args.generator == "fuzz" && args.fs == "reference"
                    ? common::StatusOr<chipmunk::FsConfig>(
                          chipmunk::MakeReferenceConfig())
                    : chipmunk::MakeFsConfig(args.fs, args.bugs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }

  // Resolve the campaign's global ordinal count the same way the workers
  // will, so the lease partition covers exactly the enumeration.
  workload::AceOptions ace;
  uint64_t total = 0;
  if (args.generator == "ace") {
    ace.seq = args.seq;
    ace.metadata_only = args.seq >= 3;
    ace.weak_mode = args.fs == "ext4dax" || args.fs == "xfsdax";
    total = workload::AceWorkloadCount(ace);
    if (args.limit != 0 && args.limit < total) {
      total = args.limit;
    }
  } else {
    total = args.iterations;
  }
  if (total == 0) {
    std::fprintf(stderr, "coordinate: the campaign has no workloads\n");
    return 2;
  }

  // Forward the raw flag tail to the workers, minus the coordinator-only
  // flags (all of which take a value). --heartbeat-ms is re-appended
  // explicitly so workers beat against the coordinator's timeout.
  std::vector<std::string> tail;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--campaign" || flag == "--workers" || flag == "--generator" ||
        flag == "--max-lease-failures" || flag == "--lease-size" ||
        flag == "--heartbeat-ms") {
      ++i;  // skip the flag's value too
      continue;
    }
    tail.push_back(flag);
  }

  coord::CoordinatorOptions options;
  options.root = args.campaign_dir;
  options.total = total;
  options.lease_size = args.lease_size == 0 ? 32 : args.lease_size;
  options.workers = args.workers;
  options.heartbeat_ms = args.heartbeat_ms;
  options.max_lease_failures = args.max_lease_failures;
  options.quarantine_dir = args.quarantine_dir;
  options.install_signal_handlers = true;
  options.worker_argv = [exe = SelfExe(argv[0]), gen = args.generator,
                         fs = args.fs, tail, root = args.campaign_dir,
                         hb = args.heartbeat_ms](size_t slot) {
    std::vector<std::string> v{exe, gen, fs};
    v.insert(v.end(), tail.begin(), tail.end());
    v.push_back("--lease-from");
    v.push_back(root);
    v.push_back("--worker-slot");
    v.push_back(std::to_string(slot));
    v.push_back("--heartbeat-ms");
    v.push_back(std::to_string(hb));
    return v;
  };
  options.poison_entry = [config = *config, args, ace](uint64_t ordinal) {
    chipmunk::QuarantineEntry e;
    e.kind = "workload";
    e.fs = config.name;
    e.bugs = config.bugs;
    e.device_size = config.device_size;
    e.ordinal = ordinal;
    e.sandbox_budget = args.sandbox_budget;
    e.detail = "lease poisoned after repeated worker failures";
    if (args.generator == "ace") {
      // The ACE enumeration is a pure function of the ordinal: the
      // quarantined workload is exactly the one the lease would have run.
      workload::AceEnumerator enumerator(ace);
      if (ordinal < enumerator.count()) {
        e.workload = enumerator.At(ordinal);
      }
    } else {
      // The fuzzer's workload depends on the corpus snapshot at its pin,
      // which died with the lease; regenerate the corpus-free variant from
      // the ordinal's RNG stream as a triage approximation.
      fuzz::FuzzOptions gen_options;
      gen_options.seed = args.seed;
      gen_options.max_ops = args.max_ops;
      common::Rng rng = common::Rng::Stream(args.seed, ordinal);
      const bool weak = args.fs == "ext4dax" || args.fs == "xfsdax";
      fuzz::WorkloadGenerator generator(&gen_options, weak, &rng);
      e.workload = generator.Generate();
      e.detail += " (corpus-free regeneration)";
    }
    return e;
  };

  coord::Coordinator coordinator(std::move(options));
  common::Status init = coordinator.Init();
  if (!init.ok()) {
    std::fprintf(stderr, "coordinator: %s\n", init.ToString().c_str());
    return 2;
  }
  auto outcome = coordinator.Run();
  if (!outcome.ok()) {
    std::fprintf(stderr, "coordinator: %s\n",
                 outcome.status().ToString().c_str());
    return 2;
  }
  std::printf("coordinator: %zu/%zu lease(s) complete, %zu revocation(s), "
              "%zu worker restart(s), %zu poisoned lease(s) (%zu workload(s) "
              "quarantined)\n",
              outcome->leases_complete, outcome->leases_total,
              outcome->lease_revocations, outcome->worker_restarts,
              outcome->leases_poisoned, outcome->ordinals_quarantined);
  if (outcome->folded) {
    std::printf("folded into %s: %zu unique report(s), %zu indexed crash "
                "state(s)\n",
                coord::MergedDir(args.campaign_dir).c_str(),
                outcome->merged.state.unique_reports.size(),
                outcome->merged.index.size());
  }
  if (outcome->drained_early) {
    std::printf("interrupted: complete leases are folded; rerun the same "
                "command to continue\n");
    return 3;
  }
  if (outcome->leases_poisoned > 0) {
    return 1;
  }
  if (outcome->folded) {
    for (const chipmunk::BugReport& r :
         outcome->merged.state.unique_reports) {
      if (r.kind != chipmunk::CheckKind::kRecoveryFailure) {
        return 1;
      }
    }
  }
  return 0;
}

// Parses the comma-separated bug ids recorded in quarantine metadata.
bool ParseBugCsv(const std::string& csv, vfs::BugSet* bugs) {
  std::istringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) {
      continue;
    }
    uint64_t id = 0;
    if (!ParseUint("bugs", token.c_str(), std::numeric_limits<int>::max(),
                   &id) ||
        vfs::FindBug(static_cast<vfs::BugId>(id)) == nullptr) {
      std::fprintf(stderr, "quarantine meta names unknown bug id '%s'\n",
                   token.c_str());
      return false;
    }
    bugs->Enable(static_cast<vfs::BugId>(id));
  }
  return true;
}

int CmdRepro(const std::string& entry_dir, const Args& args) {
  auto entry = chipmunk::ReadQuarantineEntry(entry_dir);
  if (!entry.ok()) {
    std::fprintf(stderr, "%s\n", entry.status().ToString().c_str());
    return 2;
  }
  vfs::BugSet bugs;
  if (!ParseBugCsv(entry->bugs, &bugs)) {
    return 2;
  }
  const uint64_t budget =
      args.sandbox_budget_set ? args.sandbox_budget : entry->sandbox_budget;

  if (entry->is_state()) {
    // Remount the quarantined crash-state image under the sandbox. Torn
    // stores and bit flips are baked into image.bin; read poison is not
    // reapplied (the image holds the pre-poison bytes).
    auto config = chipmunk::MakeFsConfig(entry->fs, bugs, entry->image.size());
    if (!config.ok()) {
      std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
      return 2;
    }
    std::printf("repro %s: %s state %llu of workload %s\n", entry_dir.c_str(),
                entry->fs.c_str(),
                static_cast<unsigned long long>(entry->ordinal),
                entry->workload.name.c_str());
    if (!entry->fault_detail.empty()) {
      std::printf("injected faults: %s\n", entry->fault_detail.c_str());
    }
    pmem::PmDevice dev(entry->image.size());
    pmem::Pm pm(&dev);
    pm.RestoreRaw(0, entry->image.data(), entry->image.size());
    std::unique_ptr<vfs::FileSystem> fs = config->make(&pm);
    chipmunk::SandboxResult guarded = chipmunk::RunSandboxed(
        &pm, chipmunk::SandboxOptions{budget},
        [&]() -> common::Status { return fs->Mount(); });
    if (guarded.tripped()) {
      std::printf("reproduced: %s (after %llu media ops)\n",
                  guarded.status.ToString().c_str(),
                  static_cast<unsigned long long>(guarded.ops_used));
      return 1;
    }
    if (pm.faulted()) {
      std::printf("reproduced: recovery scribbled outside the device: %s\n",
                  pm.fault().ToString().c_str());
      return 1;
    }
    if (!guarded.status.ok()) {
      std::printf("recovery failed cleanly: %s\n",
                  guarded.status.ToString().c_str());
      return 0;
    }
    std::printf("recovery completed cleanly (%llu media ops)\n",
                static_cast<unsigned long long>(guarded.ops_used));
    return 0;
  }

  // Workload entry: re-run the whole harness on the quarantined workload
  // with the recorded robustness configuration, serially.
  auto config =
      entry->device_size != 0
          ? chipmunk::MakeFsConfig(entry->fs, bugs, entry->device_size)
          : chipmunk::MakeFsConfig(entry->fs, bugs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }
  chipmunk::HarnessOptions options;
  options.jobs = 1;
  options.replay_cap = args.cap_set ? args.cap : 2;
  options.sandbox_op_budget = budget;
  if (entry->inject) {
    options.fault_plan = pmem::FaultPlan::All(entry->fault_seed);
  }
  std::printf("repro %s: re-running workload %s on %s\n", entry_dir.c_str(),
              entry->workload.name.c_str(), entry->fs.c_str());
  chipmunk::Harness harness(*config, options);
  auto stats = harness.TestWorkload(entry->workload);
  if (!stats.ok()) {
    std::printf("reproduced: replay died again: %s\n",
                stats.status().ToString().c_str());
    return 1;
  }
  bool reproduced = false;
  for (const chipmunk::BugReport& r : stats->reports) {
    std::printf("%s\n\n", r.ToString().c_str());
    if (r.kind == chipmunk::CheckKind::kRecoveryFailure) {
      reproduced = true;
    }
  }
  std::printf(reproduced ? "reproduced: recovery failure recurred\n"
                         : "did not reproduce: replay completed\n");
  return reproduced ? 1 : 0;
}

// One linted (fs, workload) pair for the tabular / JSON output.
struct LintRow {
  std::string fs;
  std::string workload;
  size_t ops = 0;
  std::vector<analysis::LintFinding> findings;
};

void PrintLintTable(const std::vector<LintRow>& rows, bool verbose) {
  std::printf("%-16s %-24s %6s  %s\n", "fs", "workload", "ops", "findings");
  for (const LintRow& row : rows) {
    // Summarize as rule=count pairs, in rule order.
    std::map<std::string, size_t> by_rule;
    for (const analysis::LintFinding& f : row.findings) {
      ++by_rule[analysis::LintRuleId(f.rule)];
    }
    std::string summary;
    for (const auto& [rule, count] : by_rule) {
      if (!summary.empty()) {
        summary += " ";
      }
      summary += rule + "=" + std::to_string(count);
    }
    if (summary.empty()) {
      summary = "clean";
    }
    std::printf("%-16s %-24s %6zu  %s\n", row.fs.c_str(),
                row.workload.c_str(), row.ops, summary.c_str());
    if (verbose) {
      for (const analysis::LintFinding& f : row.findings) {
        std::printf("    %s\n", f.ToString().c_str());
      }
    }
  }
}

void PrintLintJson(const std::vector<LintRow>& rows) {
  std::printf("[\n");
  bool first = true;
  for (const LintRow& row : rows) {
    for (const analysis::LintFinding& f : row.findings) {
      std::printf("%s  {\"fs\": \"%s\", \"workload\": \"%s\", "
                  "\"rule\": \"%s\", \"severity\": \"%s\", "
                  "\"op_begin\": %zu, \"op_end\": %zu, "
                  "\"syscall\": %d, \"byte_off\": %llu, \"byte_len\": %llu, "
                  "\"detail\": \"%s\"}",
                  first ? "" : ",\n",
                  analysis::JsonEscape(row.fs).c_str(),
                  analysis::JsonEscape(row.workload).c_str(),
                  analysis::LintRuleId(f.rule),
                  analysis::LintSeverityName(f.severity), f.op_begin,
                  f.op_end, f.syscall_index,
                  static_cast<unsigned long long>(f.byte_off),
                  static_cast<unsigned long long>(f.byte_len),
                  analysis::JsonEscape(f.detail).c_str());
      first = false;
    }
  }
  std::printf("%s]\n", first ? "" : "\n");
}

// Resolves the <fs>|all|reference positional of lint/analyze into harness
// configs. An unknown name is a usage error (exit 2 at the caller) and the
// message lists every valid target.
bool ResolveAnalysisTargets(const std::string& fs, const vfs::BugSet& bugs,
                            std::vector<chipmunk::FsConfig>* targets) {
  if (fs == "all") {
    for (const std::string& name : chipmunk::RegisteredFsNames()) {
      auto config = chipmunk::MakeFsConfig(name, bugs);
      if (!config.ok()) {
        std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
        return false;
      }
      targets->push_back(std::move(*config));
    }
    targets->push_back(chipmunk::MakeReferenceConfig());
    return true;
  }
  if (fs == "reference") {
    targets->push_back(chipmunk::MakeReferenceConfig());
    return true;
  }
  auto config = chipmunk::MakeFsConfig(fs, bugs);
  if (!config.ok()) {
    std::string valid;
    for (const std::string& name : chipmunk::RegisteredFsNames()) {
      valid += name + " ";
    }
    std::fprintf(stderr,
                 "unknown file system '%s'; valid targets: %sreference all\n",
                 fs.c_str(), valid.c_str());
    return false;
  }
  targets->push_back(std::move(*config));
  return true;
}

// The shared workload set of lint/analyze: explicit files, or the bundled
// trigger workloads.
bool ResolveAnalysisWorkloads(const Args& args,
                              std::vector<workload::Workload>* workloads) {
  if (args.workload_files.empty()) {
    *workloads = trigger::AllTriggerWorkloads();
    return true;
  }
  for (const std::string& file : args.workload_files) {
    auto w = LoadWorkload(file);
    if (!w.ok()) {
      std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
      return false;
    }
    workloads->push_back(std::move(*w));
  }
  return true;
}

int CmdLint(const Args& args) {
  std::vector<chipmunk::FsConfig> targets;
  if (!ResolveAnalysisTargets(args.fs, args.bugs, &targets)) {
    return 2;
  }
  std::vector<workload::Workload> workloads;
  if (!ResolveAnalysisWorkloads(args, &workloads)) {
    return 2;
  }

  std::vector<LintRow> rows;
  std::vector<analysis::LintRecord> records;
  size_t total = 0;
  for (const chipmunk::FsConfig& config : targets) {
    for (const workload::Workload& w : workloads) {
      auto recorded = chipmunk::RecordTrace(config, w);
      if (!recorded.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", config.name.c_str(),
                     w.name.c_str(), recorded.status().ToString().c_str());
        return 2;
      }
      analysis::LintOptions options;
      options.synchronous = recorded->guarantees.synchronous;
      LintRow row;
      row.fs = config.name;
      row.workload = w.name;
      row.ops = recorded->trace.size();
      row.findings = analysis::LintTrace(recorded->trace, options);
      total += row.findings.size();
      for (const analysis::LintFinding& f : row.findings) {
        records.push_back(analysis::LintRecord{config.name, w.name, f});
      }
      rows.push_back(std::move(row));
    }
  }

  if (args.sarif) {
    std::printf("%s", analysis::ToSarif(records).c_str());
  } else if (args.json) {
    PrintLintJson(rows);
  } else {
    PrintLintTable(rows, args.verbose);
    std::printf("%zu finding(s) across %zu trace(s)\n", total, rows.size());
  }
  return total == 0 ? 0 : 1;
}

// The happens-before analyzer front end: mines persistence-ordering
// invariants from the bug-free twin of each target (or loads a set with
// --invariants), then reports HB rule findings and invariant violations for
// the target's traces.
int CmdAnalyze(const Args& args) {
  std::vector<chipmunk::FsConfig> targets;
  if (!ResolveAnalysisTargets(args.fs, args.bugs, &targets)) {
    return 2;
  }
  if (!args.mine_out.empty() && targets.size() != 1) {
    std::fprintf(stderr, "--mine-out requires a single <fs> target\n");
    return 2;
  }
  if (!args.mine_out.empty() && !args.invariants_file.empty()) {
    std::fprintf(stderr,
                 "--mine-out and --invariants are mutually exclusive: the "
                 "former mines a set, the latter loads one\n");
    return 2;
  }
  std::vector<workload::Workload> workloads;
  if (!ResolveAnalysisWorkloads(args, &workloads)) {
    return 2;
  }

  analysis::InvariantSet loaded;
  const bool have_loaded = !args.invariants_file.empty();
  if (have_loaded && !LoadInvariants(args.invariants_file, &loaded)) {
    return 2;
  }

  std::vector<LintRow> rows;
  std::vector<analysis::LintRecord> records;
  size_t total = 0;
  for (const chipmunk::FsConfig& config : targets) {
    // Invariant source for this target: the loaded set, or a set mined from
    // the same configuration with every bug switched off (its bug-free
    // twin). Mining a clean corpus against itself is clean by construction,
    // so the interesting signal is always the delta the enabled bugs (or a
    // foreign invariant file) introduce.
    analysis::InvariantSet mined;
    const analysis::InvariantSet* set = &loaded;
    if (!have_loaded) {
      auto clean = config.name == "reference"
                       ? common::StatusOr<chipmunk::FsConfig>(
                             chipmunk::MakeReferenceConfig())
                       : chipmunk::MakeFsConfig(config.name, vfs::BugSet{});
      if (!clean.ok()) {
        std::fprintf(stderr, "%s\n", clean.status().ToString().c_str());
        return 2;
      }
      analysis::InvariantMiner miner(64, args.min_support);
      for (const workload::Workload& w : workloads) {
        auto recorded = chipmunk::RecordTrace(*clean, w);
        if (!recorded.ok()) {
          std::fprintf(stderr, "%s/%s: %s\n", config.name.c_str(),
                       w.name.c_str(), recorded.status().ToString().c_str());
          return 2;
        }
        analysis::LintOptions options;
        options.synchronous = recorded->guarantees.synchronous;
        miner.AddTrace(analysis::BuildHb(recorded->trace, options));
      }
      mined = miner.Mine(config.name);
      set = &mined;
      if (!args.json && !args.sarif) {
        std::printf("%s: mined %zu invariant(s) from %llu clean trace(s)",
                    config.name.c_str(), mined.invariants.size(),
                    static_cast<unsigned long long>(miner.traces()));
        if (miner.skipped() != 0) {
          std::printf(" (%llu skipped: too many intervals)",
                      static_cast<unsigned long long>(miner.skipped()));
        }
        std::printf("\n");
      }
    }
    if (!args.mine_out.empty()) {
      std::ofstream out(args.mine_out, std::ios::trunc);
      out << analysis::SerializeInvariants(*set);
      if (!out) {
        std::fprintf(stderr, "--mine-out: cannot write %s\n",
                     args.mine_out.c_str());
        return 2;
      }
    }
    for (const workload::Workload& w : workloads) {
      auto recorded = chipmunk::RecordTrace(config, w);
      if (!recorded.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", config.name.c_str(),
                     w.name.c_str(), recorded.status().ToString().c_str());
        return 2;
      }
      analysis::LintOptions options;
      options.synchronous = recorded->guarantees.synchronous;
      const analysis::HbAnalysis hb =
          analysis::BuildHb(recorded->trace, options);
      LintRow row;
      row.fs = config.name;
      row.workload = w.name;
      row.ops = recorded->trace.size();
      row.findings = analysis::HbLint(hb, options);
      std::vector<analysis::LintFinding> violations =
          analysis::CheckInvariants(hb, *set);
      row.findings.insert(row.findings.end(),
                          std::make_move_iterator(violations.begin()),
                          std::make_move_iterator(violations.end()));
      total += row.findings.size();
      for (const analysis::LintFinding& f : row.findings) {
        records.push_back(analysis::LintRecord{config.name, w.name, f});
      }
      rows.push_back(std::move(row));
    }
  }

  if (args.sarif) {
    std::printf("%s", analysis::ToSarif(records).c_str());
  } else if (args.json) {
    PrintLintJson(rows);
  } else {
    PrintLintTable(rows, args.verbose);
    std::printf("%zu finding(s) across %zu trace(s)\n", total, rows.size());
  }
  return total == 0 ? 0 : 1;
}

int CmdCampaignStats(const std::string& dir, bool follow) {
  // A live coordinated campaign answers over its socket with per-worker
  // lease/heartbeat/restart counts; --follow keeps polling until the
  // coordinator exits, then falls through to the on-disk snapshot.
  bool was_live = false;
  for (;;) {
    auto live = coord::FetchCoordinatorStats(coord::SocketPath(dir));
    if (!live.ok()) {
      break;
    }
    was_live = true;
    std::printf("%s", live->c_str());
    std::fflush(stdout);
    if (!follow) {
      return 0;
    }
    std::printf("\n");
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  if (was_live) {
    std::printf("coordinator exited; on-disk snapshot follows\n\n");
  }

  // On-disk snapshot. A coordinator root is not itself a store — fall back
  // to its folded <root>/merged campaign.
  std::string target = dir;
  auto loaded = store::CampaignStore::Load(target);
  if (!loaded.ok()) {
    auto merged = store::CampaignStore::Load(coord::MergedDir(dir));
    if (merged.ok()) {
      target = coord::MergedDir(dir);
      loaded = std::move(merged);
    }
  }
  if (!loaded.ok()) {
    std::fprintf(stderr, "campaign: %s\n", loaded.status().ToString().c_str());
    return 2;
  }
  if (loaded->live) {
    std::printf("note: campaign is live (another process holds the writer "
                "lock); this is a consistent snapshot, not a final result\n");
  }
  store::CampaignState st = fuzz::FoldCampaign(*loaded);
  const store::CampaignMeta& meta = loaded->meta;
  std::printf("campaign %s: fs=%s generator=%s seed=%llu shard %llu/%llu"
              "%s%s%s\n",
              target.c_str(), meta.fs.c_str(), meta.generator.c_str(),
              static_cast<unsigned long long>(meta.seed),
              static_cast<unsigned long long>(meta.shard_index),
              static_cast<unsigned long long>(meta.shard_count),
              meta.targeted ? " (targeted)" : "",
              meta.merged ? " (merged)" : "",
              loaded->log_truncated ? " (torn log tail skipped)" : "");
  std::printf("committed %llu of %llu workloads (executed %llu)\n",
              static_cast<unsigned long long>(st.committed),
              static_cast<unsigned long long>(meta.iterations),
              static_cast<unsigned long long>(st.executed));
  std::printf("corpus %zu, %zu coverage points\n", st.corpus.size(),
              st.corpus_cov_slots.size());
  const double hit_rate =
      st.crash_states == 0
          ? 0.0
          : 100.0 * static_cast<double>(st.states_deduped) /
                static_cast<double>(st.crash_states);
  std::printf("crash states %llu, deduped %llu (%.1f%% dedup hit rate)\n",
              static_cast<unsigned long long>(st.crash_states),
              static_cast<unsigned long long>(st.states_deduped), hit_rate);
  if (meta.representative) {
    std::printf("pruned %llu (representative-state mode)\n",
                static_cast<unsigned long long>(st.states_pruned));
  }
  std::printf("robustness: %llu replay failure(s), %llu retried, "
              "%llu workload(s) quarantined, %llu crash state(s) "
              "quarantined\n",
              static_cast<unsigned long long>(st.replay_failures),
              static_cast<unsigned long long>(st.replay_retries),
              static_cast<unsigned long long>(st.workloads_quarantined),
              static_cast<unsigned long long>(st.states_quarantined));
  std::printf("lint: %llu finding(s)",
              static_cast<unsigned long long>(st.lint_findings));
  for (const auto& [rule, count] : st.lint_rule_counts) {
    std::printf(" %s=%llu", rule.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\n");
  std::printf("hb: %llu finding(s)",
              static_cast<unsigned long long>(st.hb_findings));
  for (const auto& [rule, count] : st.hb_rule_counts) {
    std::printf(" %s=%llu", rule.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\n");
  std::map<std::string, size_t> by_kind;
  for (const chipmunk::BugReport& r : st.unique_reports) {
    ++by_kind[chipmunk::CheckKindName(r.kind)];
  }
  uint64_t total_hits = 0;
  for (const auto& [sig, hits] : st.report_hits) {
    total_hits += hits;
  }
  std::printf("reports: %zu unique, %llu total hit(s)",
              st.unique_reports.size(),
              static_cast<unsigned long long>(total_hits));
  for (const auto& [kind, count] : by_kind) {
    std::printf(" %s=%zu", kind.c_str(), count);
  }
  std::printf("\n");
  // Per-signature occurrence counts (every hit, not just the first): the
  // same numbers an ace or fuzz run prints, so folded stores agree with the
  // runs that produced them.
  for (const chipmunk::BugReport& r : st.unique_reports) {
    const std::string sig = r.Signature();
    auto it = st.report_hits.find(sig);
    const uint64_t hits = it == st.report_hits.end() ? 1 : it->second;
    std::printf("  %llux %s\n", static_cast<unsigned long long>(hits),
                sig.c_str());
  }
  return 0;
}

int CmdCampaignMerge(const std::string& dest,
                     const std::vector<std::string>& srcs) {
  for (const std::string& src : srcs) {
    if (src == dest) {
      std::fprintf(stderr,
                   "campaign merge: destination %s is also a source\n",
                   dest.c_str());
      return 2;
    }
    // Merging a live source is safe (the snapshot is a consistent prefix)
    // but almost never what the user wants for a final fold — say so.
    auto probe = store::CampaignStore::Load(src);
    if (probe.ok() && probe->live) {
      std::fprintf(stderr,
                   "campaign merge: note: %s is live (another process is "
                   "writing); merging its current snapshot\n",
                   src.c_str());
    }
  }
  auto merged = fuzz::MergeCampaigns(srcs);
  if (!merged.ok()) {
    std::fprintf(stderr, "campaign merge: %s\n",
                 merged.status().ToString().c_str());
    return 2;
  }
  auto out = store::CampaignStore::Create(dest, merged->meta);
  if (!out.ok()) {
    std::fprintf(stderr, "campaign merge: %s\n",
                 out.status().ToString().c_str());
    return 2;
  }
  common::Status wrote = (*out)->WriteCheckpoint(merged->state, merged->index);
  if (!wrote.ok()) {
    std::fprintf(stderr, "campaign merge: %s\n", wrote.ToString().c_str());
    return 2;
  }
  std::printf("merged %zu %s store(s) into %s: %zu unique report(s), "
              "%zu indexed crash state(s)\n",
              srcs.size(),
              merged->same_campaign ? "shard" : "cross-campaign",
              dest.c_str(), merged->state.unique_reports.size(),
              merged->index.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  if (command == "list-fs") {
    return CmdListFs();
  }
  if (command == "list-bugs") {
    return CmdListBugs();
  }
  if (command == "show") {
    if (argc < 3) {
      return Usage();
    }
    return CmdShow(argv[2]);
  }
  if (command == "repro") {
    if (argc < 3) {
      return Usage();
    }
    Args args;
    if (!ParseCommon(argc, argv, 3, args)) {
      return Usage();
    }
    return CmdRepro(argv[2], args);
  }
  if (command == "coordinate") {
    if (argc < 3) {
      return Usage();
    }
    Args args;
    args.fs = argv[2];
    if (!ParseCommon(argc, argv, 3, args)) {
      return Usage();
    }
    return CmdCoordinate(args, argc, argv);
  }
  if (command == "campaign") {
    if (argc < 4) {
      return Usage();
    }
    std::string sub = argv[2];
    if (sub == "stats") {
      std::string dir;
      bool follow = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--follow") == 0) {
          follow = true;
        } else if (dir.empty()) {
          dir = argv[i];
        } else {
          return Usage();
        }
      }
      if (dir.empty()) {
        return Usage();
      }
      return CmdCampaignStats(dir, follow);
    }
    if (sub == "merge" && argc >= 5) {
      std::vector<std::string> srcs;
      for (int i = 4; i < argc; ++i) {
        srcs.emplace_back(argv[i]);
      }
      return CmdCampaignMerge(argv[3], srcs);
    }
    return Usage();
  }
  if (command == "test" || command == "ace" || command == "fuzz" ||
      command == "lint" || command == "analyze") {
    if (argc < 3) {
      return Usage();
    }
    Args args;
    args.fs = argv[2];
    if (!ParseCommon(argc, argv, 3, args)) {
      return Usage();
    }
    if (command == "lint") {
      return CmdLint(args);
    }
    if (command == "analyze") {
      return CmdAnalyze(args);
    }
    if (command == "test") {
      if (args.workload_files.empty()) {
        std::fprintf(stderr, "test requires --workload\n");
        return 2;
      }
      return CmdTest(args);
    }
    if (command == "ace") {
      return CmdAce(args);
    }
    return CmdFuzz(args);
  }
  return Usage();
}
