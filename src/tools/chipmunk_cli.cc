// chipmunk: the command-line front end.
//
//   chipmunk list-fs
//   chipmunk list-bugs
//   chipmunk test <fs> --workload <file> [--bug N ...] [--cap N] [--verbose]
//   chipmunk ace <fs> [--seq N] [--bug N ...] [--limit M] [--cap N]
//   chipmunk fuzz <fs> [--iterations N] [--bug N ...] [--seed S]
//   chipmunk lint <fs>|all [--workload <file> ...] [--bug N ...]
//                 [--json | --sarif]
//   chipmunk show <workload-file>
//   chipmunk repro <quarantine-entry-dir> [--sandbox-budget N]
//
// Exit status: 0 = no reports, 1 = bugs reported, 2 = usage/input error.
// For repro: 0 = clean recovery or clean failure, 1 = failure reproduced.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/sarif.h"
#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/core/quarantine.h"
#include "src/core/sandbox.h"
#include "src/fuzz/fuzzer.h"
#include "src/pmem/fault.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "src/workload/ace.h"
#include "src/workload/serialize.h"
#include "src/workload/triggers.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  chipmunk list-fs\n"
               "  chipmunk list-bugs\n"
               "  chipmunk test <fs> --workload <file> [--bug N ...] "
               "[--cap N] [--jobs N] [--verbose]\n"
               "  chipmunk ace <fs> [--seq N] [--bug N ...] [--limit M] "
               "[--cap N] [--jobs N]\n"
               "  chipmunk fuzz <fs> [--iterations N] [--bug N ...] "
               "[--seed S] [--jobs N]\n"
               "                [--fuzz-jobs N] [--max-ops N]\n"
               "  chipmunk lint <fs>|all [--workload <file> ...] "
               "[--bug N ...] [--json | --sarif]\n"
               "  chipmunk show <workload-file>\n"
               "  chipmunk repro <quarantine-entry-dir> [--sandbox-budget N] "
               "[--jobs N]\n"
               "\n"
               "--jobs N shards crash-state replay across N worker threads\n"
               "(0 = one per hardware thread); results are identical for\n"
               "every value. --fuzz-jobs N additionally pipelines the fuzz\n"
               "loop itself across N workers (same determinism guarantee);\n"
               "--max-ops N caps syscalls per fuzz workload (N >= 1).\n"
               "lint statically checks recorded persistence traces (no\n"
               "replay); default workloads are the bundled trigger set.\n"
               "test/ace accept --lint (merge lint findings into reports),\n"
               "--prune (drop no-op writes from replay enumeration), and\n"
               "--prefix-only (ordered-persistency ablation).\n"
               "\n"
               "Robustness options (test/ace/fuzz):\n"
               "  --sandbox-budget N  media-op budget per sandboxed recovery\n"
               "                      (0 disables the watchdog; default 1M)\n"
               "  --inject-faults     seeded PM media faults on crash states\n"
               "                      (torn stores, bit flips, read poison);\n"
               "                      verdict becomes fail-cleanly-or-recover;\n"
               "                      incompatible with --prefix-only\n"
               "  --quarantine DIR    serialize recovery failures to DIR for\n"
               "                      offline triage with `chipmunk repro`\n"
               "repro remounts a quarantined crash state (or re-runs a\n"
               "quarantined workload) under the sandbox; exit 1 means the\n"
               "failure reproduced.\n");
  return 2;
}

struct Args {
  std::string fs;
  std::vector<std::string> workload_files;
  vfs::BugSet bugs;
  size_t cap = 0;
  int seq = 1;
  uint64_t limit = 0;
  size_t iterations = 1000;
  uint64_t seed = 1;
  size_t jobs = 1;
  size_t fuzz_jobs = 1;
  size_t max_ops = 10;
  uint64_t sandbox_budget = 1'000'000;
  bool sandbox_budget_set = false;  // repro defaults to the entry's budget
  bool inject_faults = false;
  std::string quarantine_dir;
  bool prefix_only = false;
  bool verbose = false;
  bool lint = false;
  bool prune = false;
  bool json = false;
  bool sarif = false;
};

// Strict decimal parsing for flag values: rejects empty strings, signs
// (negative values included), non-digit garbage, and overflow of the target
// range — std::atoi/strtoul silently accept all four.
bool ParseUint(const std::string& flag, const char* value, uint64_t max,
               uint64_t* out) {
  if (value == nullptr || *value == '\0') {
    std::fprintf(stderr, "%s requires a non-negative integer\n", flag.c_str());
    return false;
  }
  uint64_t parsed = 0;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      std::fprintf(stderr, "%s: '%s' is not a non-negative integer\n",
                   flag.c_str(), value);
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (parsed > max / 10 || parsed * 10 > max - digit) {
      std::fprintf(stderr, "%s: '%s' exceeds the maximum %llu\n", flag.c_str(),
                   value, static_cast<unsigned long long>(max));
      return false;
    }
    parsed = parsed * 10 + digit;
  }
  *out = parsed;
  return true;
}

bool ParseSize(const std::string& flag, const char* value, size_t* out) {
  uint64_t parsed = 0;
  if (!ParseUint(flag, value, std::numeric_limits<size_t>::max(), &parsed)) {
    return false;
  }
  *out = static_cast<size_t>(parsed);
  return true;
}

bool ParseCommon(int argc, char** argv, int start, Args& args) {
  for (int i = start; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--workload") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args.workload_files.push_back(value);
    } else if (flag == "--bug") {
      uint64_t id = 0;
      if (!ParseUint(flag, next(), std::numeric_limits<int>::max(), &id)) {
        return false;
      }
      if (vfs::FindBug(static_cast<vfs::BugId>(id)) == nullptr) {
        std::fprintf(stderr, "unknown bug id %llu (see list-bugs)\n",
                     static_cast<unsigned long long>(id));
        return false;
      }
      args.bugs.Enable(static_cast<vfs::BugId>(id));
    } else if (flag == "--cap") {
      if (!ParseSize(flag, next(), &args.cap)) {
        return false;
      }
    } else if (flag == "--seq") {
      uint64_t seq = 0;
      if (!ParseUint(flag, next(), std::numeric_limits<int>::max(), &seq)) {
        return false;
      }
      args.seq = static_cast<int>(seq);
    } else if (flag == "--limit") {
      if (!ParseUint(flag, next(), std::numeric_limits<uint64_t>::max(),
                     &args.limit)) {
        return false;
      }
    } else if (flag == "--iterations") {
      if (!ParseSize(flag, next(), &args.iterations)) {
        return false;
      }
    } else if (flag == "--seed") {
      if (!ParseUint(flag, next(), std::numeric_limits<uint64_t>::max(),
                     &args.seed)) {
        return false;
      }
    } else if (flag == "--jobs") {
      if (!ParseSize(flag, next(), &args.jobs)) {
        return false;
      }
    } else if (flag == "--fuzz-jobs") {
      if (!ParseSize(flag, next(), &args.fuzz_jobs)) {
        return false;
      }
    } else if (flag == "--max-ops") {
      if (!ParseSize(flag, next(), &args.max_ops)) {
        return false;
      }
      if (args.max_ops == 0) {
        std::fprintf(stderr, "--max-ops must be at least 1\n");
        return false;
      }
    } else if (flag == "--sandbox-budget") {
      if (!ParseUint(flag, next(), std::numeric_limits<uint64_t>::max(),
                     &args.sandbox_budget)) {
        return false;
      }
      args.sandbox_budget_set = true;
    } else if (flag == "--inject-faults") {
      args.inject_faults = true;
    } else if (flag == "--quarantine") {
      const char* value = next();
      if (value == nullptr || *value == '\0') {
        std::fprintf(stderr, "--quarantine requires a directory\n");
        return false;
      }
      args.quarantine_dir = value;
    } else if (flag == "--prefix-only") {
      args.prefix_only = true;
    } else if (flag == "--verbose") {
      args.verbose = true;
    } else if (flag == "--lint") {
      args.lint = true;
    } else if (flag == "--prune") {
      args.prune = true;
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--sarif") {
      args.sarif = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  if (args.inject_faults && args.prefix_only) {
    std::fprintf(stderr,
                 "--inject-faults cannot be combined with --prefix-only: the "
                 "ordered-persistency ablation replays prefixes only and has "
                 "no crash boundary to tear\n");
    return false;
  }
  return true;
}

common::StatusOr<workload::Workload> LoadWorkload(const std::string& file) {
  std::ifstream in(file);
  if (!in) {
    return common::NotFound("cannot open " + file);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return workload::ParseWorkload(buffer.str(), file);
}

int CmdListFs() {
  for (const std::string& name : chipmunk::RegisteredFsNames()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int CmdListBugs() {
  std::printf("%-4s %-14s %-6s %-12s %s\n", "id", "fs", "type", "fuzzer-only",
              "consequence");
  for (const vfs::BugInfo& info : vfs::AllBugs()) {
    std::printf("%-4d %-14s %-6s %-12s %s\n", static_cast<int>(info.id),
                info.fs, info.type == vfs::BugType::kLogic ? "logic" : "pm",
                info.fuzzer_only ? "yes" : "no", info.consequence);
  }
  return 0;
}

int CmdShow(const std::string& file) {
  auto w = LoadWorkload(file);
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 2;
  }
  std::printf("%s", workload::Serialize(*w).c_str());
  return 0;
}

int ReportAndExit(const std::vector<chipmunk::BugReport>& reports) {
  for (const chipmunk::BugReport& report : reports) {
    std::printf("%s\n\n", report.ToString().c_str());
  }
  std::printf("%zu unique report(s)\n", reports.size());
  return reports.empty() ? 0 : 1;
}

// The robustness knobs shared by test/ace/fuzz.
void ApplyRobustnessOptions(const Args& args,
                            chipmunk::HarnessOptions& options) {
  options.sandbox_op_budget = args.sandbox_budget;
  options.quarantine_dir = args.quarantine_dir;
  if (args.inject_faults) {
    options.fault_plan = pmem::FaultPlan::All(args.seed);
  }
}

int CmdTest(const Args& args) {
  auto config = chipmunk::MakeFsConfig(args.fs, args.bugs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }
  chipmunk::HarnessOptions options;
  options.replay_cap = args.cap;
  options.jobs = args.jobs;
  options.lint = args.lint;
  options.prune_noop_fences = args.prune;
  options.prefix_only = args.prefix_only;
  ApplyRobustnessOptions(args, options);
  chipmunk::Harness harness(*config, options);
  std::vector<chipmunk::BugReport> all;
  for (const std::string& file : args.workload_files) {
    auto w = LoadWorkload(file);
    if (!w.ok()) {
      std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
      return 2;
    }
    auto stats = harness.TestWorkload(*w);
    if (!stats.ok()) {
      std::fprintf(stderr, "harness: %s\n", stats.status().ToString().c_str());
      return 2;
    }
    if (args.verbose) {
      std::printf("%s: %llu crash states, %zu report(s)\n", file.c_str(),
                  static_cast<unsigned long long>(stats->crash_states),
                  stats->reports.size());
    }
    for (const std::string& entry : stats->quarantined) {
      std::printf("quarantined: %s\n", entry.c_str());
    }
    all.insert(all.end(), stats->reports.begin(), stats->reports.end());
  }
  return ReportAndExit(all);
}

int CmdAce(const Args& args) {
  auto config = chipmunk::MakeFsConfig(args.fs, args.bugs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }
  chipmunk::HarnessOptions options;
  options.replay_cap = args.cap;
  options.jobs = args.jobs;
  options.lint = args.lint;
  options.prune_noop_fences = args.prune;
  options.prefix_only = args.prefix_only;
  ApplyRobustnessOptions(args, options);
  chipmunk::Harness harness(*config, options);
  workload::AceOptions ace;
  ace.seq = args.seq;
  ace.metadata_only = args.seq >= 3;
  ace.weak_mode = args.fs == "ext4dax" || args.fs == "xfsdax";
  std::map<std::string, chipmunk::BugReport> unique;
  uint64_t ran = 0;
  uint64_t states = 0;
  workload::ForEachAceWorkload(ace, [&](const workload::Workload& w) {
    auto stats = harness.TestWorkload(w);
    if (stats.ok()) {
      ++ran;
      states += stats->crash_states;
      for (chipmunk::BugReport& report : stats->reports) {
        unique.emplace(report.Signature(), report);
      }
    }
    return args.limit == 0 || ran < args.limit;
  });
  std::printf("ran %llu workloads, %llu crash states\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(states));
  std::vector<chipmunk::BugReport> reports;
  for (auto& [sig, report] : unique) {
    reports.push_back(report);
  }
  return ReportAndExit(reports);
}

int CmdFuzz(const Args& args) {
  // The reference FS is a legal fuzz target (the known-clean baseline for
  // smoke runs) even though it is not a registered PM file system.
  auto config = args.fs == "reference"
                    ? common::StatusOr<chipmunk::FsConfig>(
                          chipmunk::MakeReferenceConfig())
                    : chipmunk::MakeFsConfig(args.fs, args.bugs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }
  fuzz::FuzzOptions options;
  options.seed = args.seed;
  options.iterations = args.iterations;
  options.max_ops = args.max_ops;
  options.jobs = args.fuzz_jobs;
  if (args.cap != 0) {
    options.harness.replay_cap = args.cap;
  }
  options.harness.jobs = args.jobs;
  ApplyRobustnessOptions(args, options.harness);
  fuzz::Fuzzer fuzzer(*config, options);
  fuzz::FuzzResult result = fuzzer.Run();
  std::printf("executed %zu workloads, %zu crash states, corpus %zu, "
              "%zu coverage points\n",
              result.executed, result.crash_states, result.corpus_size,
              result.coverage_points);
  // Wall vs CPU are distinct on purpose: wall shrinks with more workers, CPU
  // (aggregated across every worker thread) stays comparable across job
  // counts. The "time:" prefix lets scripted determinism checks strip the
  // only nondeterministic line.
  std::printf("time: wall %.2fs, cpu %.2fs\n", result.wall_seconds,
              result.cpu_seconds);
  std::printf("lint: %zu finding(s)", result.lint_findings);
  for (const auto& [rule, count] : result.lint_rule_counts) {
    std::printf(" %s=%zu", rule.c_str(), count);
  }
  std::printf("\n");
  std::printf("robustness: %zu replay failure(s), %zu retried, "
              "%zu workload(s) quarantined, %zu crash state(s) quarantined\n",
              result.replay_failures, result.replay_retries,
              result.workloads_quarantined, result.states_quarantined);
  for (const fuzz::ReportCluster& cluster : result.clusters) {
    std::printf("--- cluster (%zu reports) ---\n%s\n\n",
                cluster.members.size(),
                cluster.representative.ToString().c_str());
  }
  // Recovery-failure reports are robustness findings: the failing state or
  // workload is quarantined above for offline triage (`chipmunk repro`), and
  // the campaign itself completed — so they do not fail the run. Everything
  // else (consistency divergence, OOB, ...) still exits 1.
  for (const chipmunk::BugReport& r : result.unique_reports) {
    if (r.kind != chipmunk::CheckKind::kRecoveryFailure) {
      return 1;
    }
  }
  return 0;
}

// Parses the comma-separated bug ids recorded in quarantine metadata.
bool ParseBugCsv(const std::string& csv, vfs::BugSet* bugs) {
  std::istringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) {
      continue;
    }
    uint64_t id = 0;
    if (!ParseUint("bugs", token.c_str(), std::numeric_limits<int>::max(),
                   &id) ||
        vfs::FindBug(static_cast<vfs::BugId>(id)) == nullptr) {
      std::fprintf(stderr, "quarantine meta names unknown bug id '%s'\n",
                   token.c_str());
      return false;
    }
    bugs->Enable(static_cast<vfs::BugId>(id));
  }
  return true;
}

int CmdRepro(const std::string& entry_dir, const Args& args) {
  auto entry = chipmunk::ReadQuarantineEntry(entry_dir);
  if (!entry.ok()) {
    std::fprintf(stderr, "%s\n", entry.status().ToString().c_str());
    return 2;
  }
  vfs::BugSet bugs;
  if (!ParseBugCsv(entry->bugs, &bugs)) {
    return 2;
  }
  const uint64_t budget =
      args.sandbox_budget_set ? args.sandbox_budget : entry->sandbox_budget;

  if (entry->is_state()) {
    // Remount the quarantined crash-state image under the sandbox. Torn
    // stores and bit flips are baked into image.bin; read poison is not
    // reapplied (the image holds the pre-poison bytes).
    auto config = chipmunk::MakeFsConfig(entry->fs, bugs, entry->image.size());
    if (!config.ok()) {
      std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
      return 2;
    }
    std::printf("repro %s: %s state %llu of workload %s\n", entry_dir.c_str(),
                entry->fs.c_str(),
                static_cast<unsigned long long>(entry->ordinal),
                entry->workload.name.c_str());
    if (!entry->fault_detail.empty()) {
      std::printf("injected faults: %s\n", entry->fault_detail.c_str());
    }
    pmem::PmDevice dev(entry->image.size());
    pmem::Pm pm(&dev);
    pm.RestoreRaw(0, entry->image.data(), entry->image.size());
    std::unique_ptr<vfs::FileSystem> fs = config->make(&pm);
    chipmunk::SandboxResult guarded = chipmunk::RunSandboxed(
        &pm, chipmunk::SandboxOptions{budget},
        [&]() -> common::Status { return fs->Mount(); });
    if (guarded.tripped()) {
      std::printf("reproduced: %s (after %llu media ops)\n",
                  guarded.status.ToString().c_str(),
                  static_cast<unsigned long long>(guarded.ops_used));
      return 1;
    }
    if (pm.faulted()) {
      std::printf("reproduced: recovery scribbled outside the device: %s\n",
                  pm.fault().ToString().c_str());
      return 1;
    }
    if (!guarded.status.ok()) {
      std::printf("recovery failed cleanly: %s\n",
                  guarded.status.ToString().c_str());
      return 0;
    }
    std::printf("recovery completed cleanly (%llu media ops)\n",
                static_cast<unsigned long long>(guarded.ops_used));
    return 0;
  }

  // Workload entry: re-run the whole harness on the quarantined workload
  // with the recorded robustness configuration, serially.
  auto config =
      entry->device_size != 0
          ? chipmunk::MakeFsConfig(entry->fs, bugs, entry->device_size)
          : chipmunk::MakeFsConfig(entry->fs, bugs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }
  chipmunk::HarnessOptions options;
  options.jobs = 1;
  options.replay_cap = args.cap != 0 ? args.cap : 2;
  options.sandbox_op_budget = budget;
  if (entry->inject) {
    options.fault_plan = pmem::FaultPlan::All(entry->fault_seed);
  }
  std::printf("repro %s: re-running workload %s on %s\n", entry_dir.c_str(),
              entry->workload.name.c_str(), entry->fs.c_str());
  chipmunk::Harness harness(*config, options);
  auto stats = harness.TestWorkload(entry->workload);
  if (!stats.ok()) {
    std::printf("reproduced: replay died again: %s\n",
                stats.status().ToString().c_str());
    return 1;
  }
  bool reproduced = false;
  for (const chipmunk::BugReport& r : stats->reports) {
    std::printf("%s\n\n", r.ToString().c_str());
    if (r.kind == chipmunk::CheckKind::kRecoveryFailure) {
      reproduced = true;
    }
  }
  std::printf(reproduced ? "reproduced: recovery failure recurred\n"
                         : "did not reproduce: replay completed\n");
  return reproduced ? 1 : 0;
}

// One linted (fs, workload) pair for the tabular / JSON output.
struct LintRow {
  std::string fs;
  std::string workload;
  size_t ops = 0;
  std::vector<analysis::LintFinding> findings;
};

void PrintLintTable(const std::vector<LintRow>& rows, bool verbose) {
  std::printf("%-16s %-24s %6s  %s\n", "fs", "workload", "ops", "findings");
  for (const LintRow& row : rows) {
    // Summarize as rule=count pairs, in rule order.
    std::map<std::string, size_t> by_rule;
    for (const analysis::LintFinding& f : row.findings) {
      ++by_rule[analysis::LintRuleId(f.rule)];
    }
    std::string summary;
    for (const auto& [rule, count] : by_rule) {
      if (!summary.empty()) {
        summary += " ";
      }
      summary += rule + "=" + std::to_string(count);
    }
    if (summary.empty()) {
      summary = "clean";
    }
    std::printf("%-16s %-24s %6zu  %s\n", row.fs.c_str(),
                row.workload.c_str(), row.ops, summary.c_str());
    if (verbose) {
      for (const analysis::LintFinding& f : row.findings) {
        std::printf("    %s\n", f.ToString().c_str());
      }
    }
  }
}

void PrintLintJson(const std::vector<LintRow>& rows) {
  std::printf("[\n");
  bool first = true;
  for (const LintRow& row : rows) {
    for (const analysis::LintFinding& f : row.findings) {
      std::printf("%s  {\"fs\": \"%s\", \"workload\": \"%s\", "
                  "\"rule\": \"%s\", \"severity\": \"%s\", "
                  "\"op_begin\": %zu, \"op_end\": %zu, "
                  "\"syscall\": %d, \"byte_off\": %llu, \"byte_len\": %llu, "
                  "\"detail\": \"%s\"}",
                  first ? "" : ",\n",
                  analysis::JsonEscape(row.fs).c_str(),
                  analysis::JsonEscape(row.workload).c_str(),
                  analysis::LintRuleId(f.rule),
                  analysis::LintSeverityName(f.severity), f.op_begin,
                  f.op_end, f.syscall_index,
                  static_cast<unsigned long long>(f.byte_off),
                  static_cast<unsigned long long>(f.byte_len),
                  analysis::JsonEscape(f.detail).c_str());
      first = false;
    }
  }
  std::printf("%s]\n", first ? "" : "\n");
}

int CmdLint(const Args& args) {
  std::vector<chipmunk::FsConfig> targets;
  if (args.fs == "all") {
    for (const std::string& name : chipmunk::RegisteredFsNames()) {
      auto config = chipmunk::MakeFsConfig(name, args.bugs);
      if (!config.ok()) {
        std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
        return 2;
      }
      targets.push_back(std::move(*config));
    }
    targets.push_back(chipmunk::MakeReferenceConfig());
  } else if (args.fs == "reference") {
    targets.push_back(chipmunk::MakeReferenceConfig());
  } else {
    auto config = chipmunk::MakeFsConfig(args.fs, args.bugs);
    if (!config.ok()) {
      std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
      return 2;
    }
    targets.push_back(std::move(*config));
  }

  std::vector<workload::Workload> workloads;
  if (args.workload_files.empty()) {
    workloads = trigger::AllTriggerWorkloads();
  } else {
    for (const std::string& file : args.workload_files) {
      auto w = LoadWorkload(file);
      if (!w.ok()) {
        std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
        return 2;
      }
      workloads.push_back(std::move(*w));
    }
  }

  std::vector<LintRow> rows;
  std::vector<analysis::LintRecord> records;
  size_t total = 0;
  for (const chipmunk::FsConfig& config : targets) {
    for (const workload::Workload& w : workloads) {
      auto recorded = chipmunk::RecordTrace(config, w);
      if (!recorded.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", config.name.c_str(),
                     w.name.c_str(), recorded.status().ToString().c_str());
        return 2;
      }
      analysis::LintOptions options;
      options.synchronous = recorded->guarantees.synchronous;
      LintRow row;
      row.fs = config.name;
      row.workload = w.name;
      row.ops = recorded->trace.size();
      row.findings = analysis::LintTrace(recorded->trace, options);
      total += row.findings.size();
      for (const analysis::LintFinding& f : row.findings) {
        records.push_back(analysis::LintRecord{config.name, w.name, f});
      }
      rows.push_back(std::move(row));
    }
  }

  if (args.sarif) {
    std::printf("%s", analysis::ToSarif(records).c_str());
  } else if (args.json) {
    PrintLintJson(rows);
  } else {
    PrintLintTable(rows, args.verbose);
    std::printf("%zu finding(s) across %zu trace(s)\n", total, rows.size());
  }
  return total == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  if (command == "list-fs") {
    return CmdListFs();
  }
  if (command == "list-bugs") {
    return CmdListBugs();
  }
  if (command == "show") {
    if (argc < 3) {
      return Usage();
    }
    return CmdShow(argv[2]);
  }
  if (command == "repro") {
    if (argc < 3) {
      return Usage();
    }
    Args args;
    if (!ParseCommon(argc, argv, 3, args)) {
      return Usage();
    }
    return CmdRepro(argv[2], args);
  }
  if (command == "test" || command == "ace" || command == "fuzz" ||
      command == "lint") {
    if (argc < 3) {
      return Usage();
    }
    Args args;
    args.fs = argv[2];
    if (!ParseCommon(argc, argv, 3, args)) {
      return Usage();
    }
    if (command == "lint") {
      return CmdLint(args);
    }
    if (command == "test") {
      if (args.workload_files.empty()) {
        std::fprintf(stderr, "test requires --workload\n");
        return 2;
      }
      return CmdTest(args);
    }
    if (command == "ace") {
      return CmdAce(args);
    }
    return CmdFuzz(args);
  }
  return Usage();
}
