// chipmunk: the command-line front end.
//
//   chipmunk list-fs
//   chipmunk list-bugs
//   chipmunk test <fs> --workload <file> [--bug N ...] [--cap N] [--verbose]
//   chipmunk ace <fs> [--seq N] [--bug N ...] [--limit M] [--cap N]
//   chipmunk fuzz <fs> [--iterations N] [--bug N ...] [--seed S]
//   chipmunk lint <fs>|all [--workload <file> ...] [--bug N ...]
//                 [--json | --sarif]
//   chipmunk show <workload-file>
//
// Exit status: 0 = no reports, 1 = bugs reported, 2 = usage/input error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/sarif.h"
#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/fuzz/fuzzer.h"
#include "src/workload/ace.h"
#include "src/workload/serialize.h"
#include "src/workload/triggers.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  chipmunk list-fs\n"
               "  chipmunk list-bugs\n"
               "  chipmunk test <fs> --workload <file> [--bug N ...] "
               "[--cap N] [--jobs N] [--verbose]\n"
               "  chipmunk ace <fs> [--seq N] [--bug N ...] [--limit M] "
               "[--cap N] [--jobs N]\n"
               "  chipmunk fuzz <fs> [--iterations N] [--bug N ...] "
               "[--seed S] [--jobs N]\n"
               "                [--fuzz-jobs N] [--max-ops N]\n"
               "  chipmunk lint <fs>|all [--workload <file> ...] "
               "[--bug N ...] [--json | --sarif]\n"
               "  chipmunk show <workload-file>\n"
               "\n"
               "--jobs N shards crash-state replay across N worker threads\n"
               "(0 = one per hardware thread); results are identical for\n"
               "every value. --fuzz-jobs N additionally pipelines the fuzz\n"
               "loop itself across N workers (same determinism guarantee);\n"
               "--max-ops N caps syscalls per fuzz workload (N >= 1).\n"
               "lint statically checks recorded persistence traces (no\n"
               "replay); default workloads are the bundled trigger set.\n"
               "test/ace accept --lint (merge lint findings into reports)\n"
               "and --prune (drop no-op writes from replay enumeration).\n");
  return 2;
}

struct Args {
  std::string fs;
  std::vector<std::string> workload_files;
  vfs::BugSet bugs;
  size_t cap = 0;
  int seq = 1;
  uint64_t limit = 0;
  size_t iterations = 1000;
  uint64_t seed = 1;
  size_t jobs = 1;
  size_t fuzz_jobs = 1;
  size_t max_ops = 10;
  bool verbose = false;
  bool lint = false;
  bool prune = false;
  bool json = false;
  bool sarif = false;
};

bool ParseCommon(int argc, char** argv, int start, Args& args) {
  for (int i = start; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--workload") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args.workload_files.push_back(value);
    } else if (flag == "--bug") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      int id = std::atoi(value);
      if (vfs::FindBug(static_cast<vfs::BugId>(id)) == nullptr) {
        std::fprintf(stderr, "unknown bug id %d (see list-bugs)\n", id);
        return false;
      }
      args.bugs.Enable(static_cast<vfs::BugId>(id));
    } else if (flag == "--cap") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args.cap = std::strtoul(value, nullptr, 10);
    } else if (flag == "--seq") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args.seq = std::atoi(value);
    } else if (flag == "--limit") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args.limit = std::strtoull(value, nullptr, 10);
    } else if (flag == "--iterations") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args.iterations = std::strtoul(value, nullptr, 10);
    } else if (flag == "--seed") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--jobs") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args.jobs = std::strtoul(value, nullptr, 10);
    } else if (flag == "--fuzz-jobs") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args.fuzz_jobs = std::strtoul(value, nullptr, 10);
    } else if (flag == "--max-ops") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args.max_ops = std::strtoul(value, nullptr, 10);
      if (args.max_ops == 0) {
        std::fprintf(stderr, "--max-ops must be at least 1\n");
        return false;
      }
    } else if (flag == "--verbose") {
      args.verbose = true;
    } else if (flag == "--lint") {
      args.lint = true;
    } else if (flag == "--prune") {
      args.prune = true;
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--sarif") {
      args.sarif = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

common::StatusOr<workload::Workload> LoadWorkload(const std::string& file) {
  std::ifstream in(file);
  if (!in) {
    return common::NotFound("cannot open " + file);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return workload::ParseWorkload(buffer.str(), file);
}

int CmdListFs() {
  for (const std::string& name : chipmunk::RegisteredFsNames()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int CmdListBugs() {
  std::printf("%-4s %-14s %-6s %-12s %s\n", "id", "fs", "type", "fuzzer-only",
              "consequence");
  for (const vfs::BugInfo& info : vfs::AllBugs()) {
    std::printf("%-4d %-14s %-6s %-12s %s\n", static_cast<int>(info.id),
                info.fs, info.type == vfs::BugType::kLogic ? "logic" : "pm",
                info.fuzzer_only ? "yes" : "no", info.consequence);
  }
  return 0;
}

int CmdShow(const std::string& file) {
  auto w = LoadWorkload(file);
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 2;
  }
  std::printf("%s", workload::Serialize(*w).c_str());
  return 0;
}

int ReportAndExit(const std::vector<chipmunk::BugReport>& reports) {
  for (const chipmunk::BugReport& report : reports) {
    std::printf("%s\n\n", report.ToString().c_str());
  }
  std::printf("%zu unique report(s)\n", reports.size());
  return reports.empty() ? 0 : 1;
}

int CmdTest(const Args& args) {
  auto config = chipmunk::MakeFsConfig(args.fs, args.bugs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }
  chipmunk::HarnessOptions options;
  options.replay_cap = args.cap;
  options.jobs = args.jobs;
  options.lint = args.lint;
  options.prune_noop_fences = args.prune;
  chipmunk::Harness harness(*config, options);
  std::vector<chipmunk::BugReport> all;
  for (const std::string& file : args.workload_files) {
    auto w = LoadWorkload(file);
    if (!w.ok()) {
      std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
      return 2;
    }
    auto stats = harness.TestWorkload(*w);
    if (!stats.ok()) {
      std::fprintf(stderr, "harness: %s\n", stats.status().ToString().c_str());
      return 2;
    }
    if (args.verbose) {
      std::printf("%s: %llu crash states, %zu report(s)\n", file.c_str(),
                  static_cast<unsigned long long>(stats->crash_states),
                  stats->reports.size());
    }
    all.insert(all.end(), stats->reports.begin(), stats->reports.end());
  }
  return ReportAndExit(all);
}

int CmdAce(const Args& args) {
  auto config = chipmunk::MakeFsConfig(args.fs, args.bugs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }
  chipmunk::HarnessOptions options;
  options.replay_cap = args.cap;
  options.jobs = args.jobs;
  options.lint = args.lint;
  options.prune_noop_fences = args.prune;
  chipmunk::Harness harness(*config, options);
  workload::AceOptions ace;
  ace.seq = args.seq;
  ace.metadata_only = args.seq >= 3;
  ace.weak_mode = args.fs == "ext4dax" || args.fs == "xfsdax";
  std::map<std::string, chipmunk::BugReport> unique;
  uint64_t ran = 0;
  uint64_t states = 0;
  workload::ForEachAceWorkload(ace, [&](const workload::Workload& w) {
    auto stats = harness.TestWorkload(w);
    if (stats.ok()) {
      ++ran;
      states += stats->crash_states;
      for (chipmunk::BugReport& report : stats->reports) {
        unique.emplace(report.Signature(), report);
      }
    }
    return args.limit == 0 || ran < args.limit;
  });
  std::printf("ran %llu workloads, %llu crash states\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(states));
  std::vector<chipmunk::BugReport> reports;
  for (auto& [sig, report] : unique) {
    reports.push_back(report);
  }
  return ReportAndExit(reports);
}

int CmdFuzz(const Args& args) {
  // The reference FS is a legal fuzz target (the known-clean baseline for
  // smoke runs) even though it is not a registered PM file system.
  auto config = args.fs == "reference"
                    ? common::StatusOr<chipmunk::FsConfig>(
                          chipmunk::MakeReferenceConfig())
                    : chipmunk::MakeFsConfig(args.fs, args.bugs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }
  fuzz::FuzzOptions options;
  options.seed = args.seed;
  options.iterations = args.iterations;
  options.max_ops = args.max_ops;
  options.jobs = args.fuzz_jobs;
  if (args.cap != 0) {
    options.harness.replay_cap = args.cap;
  }
  options.harness.jobs = args.jobs;
  fuzz::Fuzzer fuzzer(*config, options);
  fuzz::FuzzResult result = fuzzer.Run();
  std::printf("executed %zu workloads, %zu crash states, corpus %zu, "
              "%zu coverage points\n",
              result.executed, result.crash_states, result.corpus_size,
              result.coverage_points);
  // Wall vs CPU are distinct on purpose: wall shrinks with more workers, CPU
  // (aggregated across every worker thread) stays comparable across job
  // counts. The "time:" prefix lets scripted determinism checks strip the
  // only nondeterministic line.
  std::printf("time: wall %.2fs, cpu %.2fs\n", result.wall_seconds,
              result.cpu_seconds);
  std::printf("lint: %zu finding(s)", result.lint_findings);
  for (const auto& [rule, count] : result.lint_rule_counts) {
    std::printf(" %s=%zu", rule.c_str(), count);
  }
  std::printf("\n");
  for (const fuzz::ReportCluster& cluster : result.clusters) {
    std::printf("--- cluster (%zu reports) ---\n%s\n\n",
                cluster.members.size(),
                cluster.representative.ToString().c_str());
  }
  return result.unique_reports.empty() ? 0 : 1;
}

// One linted (fs, workload) pair for the tabular / JSON output.
struct LintRow {
  std::string fs;
  std::string workload;
  size_t ops = 0;
  std::vector<analysis::LintFinding> findings;
};

void PrintLintTable(const std::vector<LintRow>& rows, bool verbose) {
  std::printf("%-16s %-24s %6s  %s\n", "fs", "workload", "ops", "findings");
  for (const LintRow& row : rows) {
    // Summarize as rule=count pairs, in rule order.
    std::map<std::string, size_t> by_rule;
    for (const analysis::LintFinding& f : row.findings) {
      ++by_rule[analysis::LintRuleId(f.rule)];
    }
    std::string summary;
    for (const auto& [rule, count] : by_rule) {
      if (!summary.empty()) {
        summary += " ";
      }
      summary += rule + "=" + std::to_string(count);
    }
    if (summary.empty()) {
      summary = "clean";
    }
    std::printf("%-16s %-24s %6zu  %s\n", row.fs.c_str(),
                row.workload.c_str(), row.ops, summary.c_str());
    if (verbose) {
      for (const analysis::LintFinding& f : row.findings) {
        std::printf("    %s\n", f.ToString().c_str());
      }
    }
  }
}

void PrintLintJson(const std::vector<LintRow>& rows) {
  std::printf("[\n");
  bool first = true;
  for (const LintRow& row : rows) {
    for (const analysis::LintFinding& f : row.findings) {
      std::printf("%s  {\"fs\": \"%s\", \"workload\": \"%s\", "
                  "\"rule\": \"%s\", \"severity\": \"%s\", "
                  "\"op_begin\": %zu, \"op_end\": %zu, "
                  "\"syscall\": %d, \"byte_off\": %llu, \"byte_len\": %llu, "
                  "\"detail\": \"%s\"}",
                  first ? "" : ",\n",
                  analysis::JsonEscape(row.fs).c_str(),
                  analysis::JsonEscape(row.workload).c_str(),
                  analysis::LintRuleId(f.rule),
                  analysis::LintSeverityName(f.severity), f.op_begin,
                  f.op_end, f.syscall_index,
                  static_cast<unsigned long long>(f.byte_off),
                  static_cast<unsigned long long>(f.byte_len),
                  analysis::JsonEscape(f.detail).c_str());
      first = false;
    }
  }
  std::printf("%s]\n", first ? "" : "\n");
}

int CmdLint(const Args& args) {
  std::vector<chipmunk::FsConfig> targets;
  if (args.fs == "all") {
    for (const std::string& name : chipmunk::RegisteredFsNames()) {
      auto config = chipmunk::MakeFsConfig(name, args.bugs);
      if (!config.ok()) {
        std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
        return 2;
      }
      targets.push_back(std::move(*config));
    }
    targets.push_back(chipmunk::MakeReferenceConfig());
  } else if (args.fs == "reference") {
    targets.push_back(chipmunk::MakeReferenceConfig());
  } else {
    auto config = chipmunk::MakeFsConfig(args.fs, args.bugs);
    if (!config.ok()) {
      std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
      return 2;
    }
    targets.push_back(std::move(*config));
  }

  std::vector<workload::Workload> workloads;
  if (args.workload_files.empty()) {
    workloads = trigger::AllTriggerWorkloads();
  } else {
    for (const std::string& file : args.workload_files) {
      auto w = LoadWorkload(file);
      if (!w.ok()) {
        std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
        return 2;
      }
      workloads.push_back(std::move(*w));
    }
  }

  std::vector<LintRow> rows;
  std::vector<analysis::LintRecord> records;
  size_t total = 0;
  for (const chipmunk::FsConfig& config : targets) {
    for (const workload::Workload& w : workloads) {
      auto recorded = chipmunk::RecordTrace(config, w);
      if (!recorded.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", config.name.c_str(),
                     w.name.c_str(), recorded.status().ToString().c_str());
        return 2;
      }
      analysis::LintOptions options;
      options.synchronous = recorded->guarantees.synchronous;
      LintRow row;
      row.fs = config.name;
      row.workload = w.name;
      row.ops = recorded->trace.size();
      row.findings = analysis::LintTrace(recorded->trace, options);
      total += row.findings.size();
      for (const analysis::LintFinding& f : row.findings) {
        records.push_back(analysis::LintRecord{config.name, w.name, f});
      }
      rows.push_back(std::move(row));
    }
  }

  if (args.sarif) {
    std::printf("%s", analysis::ToSarif(records).c_str());
  } else if (args.json) {
    PrintLintJson(rows);
  } else {
    PrintLintTable(rows, args.verbose);
    std::printf("%zu finding(s) across %zu trace(s)\n", total, rows.size());
  }
  return total == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  if (command == "list-fs") {
    return CmdListFs();
  }
  if (command == "list-bugs") {
    return CmdListBugs();
  }
  if (command == "show") {
    if (argc < 3) {
      return Usage();
    }
    return CmdShow(argv[2]);
  }
  if (command == "test" || command == "ace" || command == "fuzz" ||
      command == "lint") {
    if (argc < 3) {
      return Usage();
    }
    Args args;
    args.fs = argv[2];
    if (!ParseCommon(argc, argv, 3, args)) {
      return Usage();
    }
    if (command == "lint") {
      return CmdLint(args);
    }
    if (command == "test") {
      if (args.workload_files.empty()) {
        std::fprintf(stderr, "test requires --workload\n");
        return 2;
      }
      return CmdTest(args);
    }
    if (command == "ace") {
      return CmdAce(args);
    }
    return CmdFuzz(args);
  }
  return Usage();
}
