#include <gtest/gtest.h>

#include "src/fs/reference/reference_fs.h"
#include "src/vfs/vfs.h"

namespace {

using common::ErrorCode;
using reffs::ReferenceFs;
using vfs::OpenFlags;

class ReferenceFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fs_.Mkfs().ok());
    ASSERT_TRUE(fs_.Mount().ok());
  }
  ReferenceFs fs_;
  vfs::Vfs v_{&fs_};
};

TEST_F(ReferenceFsTest, OpsBeforeMountRejected) {
  ReferenceFs fs;
  ASSERT_TRUE(fs.Mkfs().ok());
  EXPECT_EQ(fs.GetAttr(fs.RootIno()).status().code(), ErrorCode::kNotMounted);
}

TEST_F(ReferenceFsTest, MkfsResetsState) {
  ASSERT_TRUE(v_.Open("/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(fs_.Mkfs().ok());
  ASSERT_TRUE(fs_.Mount().ok());
  EXPECT_FALSE(v_.Stat("/f").ok());
}

TEST_F(ReferenceFsTest, CapacityEnforced) {
  fs_.set_capacity_bytes(10000);
  auto fd = v_.Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> big(20000, 'b');
  EXPECT_EQ(v_.Write(*fd, big.data(), big.size()).status().code(),
            ErrorCode::kNoSpace);
  std::vector<uint8_t> ok(5000, 'o');
  EXPECT_TRUE(v_.Write(*fd, ok.data(), ok.size()).ok());
  EXPECT_EQ(v_.Truncate("/f", 20000).code(), ErrorCode::kNoSpace);
}

TEST_F(ReferenceFsTest, RenameDirIntoItselfRejected) {
  ASSERT_TRUE(v_.Mkdir("/a").ok());
  EXPECT_EQ(v_.Rename("/a", "/a/b").code(), ErrorCode::kInvalid);
}

TEST_F(ReferenceFsTest, NlinkAccountingAcrossOps) {
  ASSERT_TRUE(v_.Mkdir("/a").ok());
  ASSERT_TRUE(v_.Mkdir("/a/b").ok());
  ASSERT_TRUE(v_.Mkdir("/a/c").ok());
  EXPECT_EQ(v_.Stat("/a")->nlink, 4u);
  ASSERT_TRUE(v_.Rmdir("/a/b").ok());
  EXPECT_EQ(v_.Stat("/a")->nlink, 3u);
  ASSERT_TRUE(v_.Rename("/a/c", "/c").ok());
  EXPECT_EQ(v_.Stat("/a")->nlink, 2u);
  EXPECT_EQ(v_.Stat("/")->nlink, 4u);  // root: ".", "..", /a, /c
}

TEST_F(ReferenceFsTest, PunchHoleZeroesWithinSize) {
  auto fd = v_.Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(1000, 'd');
  ASSERT_TRUE(v_.Write(*fd, data.data(), data.size()).ok());
  ASSERT_TRUE(v_.FallocateFd(*fd, vfs::kFallocPunchHole | vfs::kFallocKeepSize,
                             100, 100)
                  .ok());
  auto content = v_.ReadFile("/f");
  EXPECT_EQ((*content)[99], 'd');
  EXPECT_EQ((*content)[100], 0);
  EXPECT_EQ((*content)[199], 0);
  EXPECT_EQ((*content)[200], 'd');
  EXPECT_EQ(content->size(), 1000u);
}

TEST_F(ReferenceFsTest, PunchHoleWithoutKeepSizeInvalid) {
  auto fd = v_.Open("/f", OpenFlags{.create = true});
  EXPECT_EQ(v_.FallocateFd(*fd, vfs::kFallocPunchHole, 0, 10).code(),
            ErrorCode::kInvalid);
}

TEST_F(ReferenceFsTest, ReadBeyondEofReturnsZeroBytes) {
  auto fd = v_.Open("/f", OpenFlags{.create = true});
  uint8_t buf[8];
  EXPECT_EQ(*v_.Pread(*fd, buf, 8, 100), 0u);
}

}  // namespace
