// WineFS-specific unit tests: per-CPU journals, alignment-aware allocation,
// and strict-mode copy-on-write writes.
#include <gtest/gtest.h>

#include <memory>

#include "src/fs/winefs/winefs.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "src/vfs/vfs.h"

namespace {

using common::ErrorCode;
using winefs::WinefsFs;
using winefs::WinefsOptions;
using vfs::OpenFlags;

constexpr size_t kDevSize = 1024 * 1024;

class WinefsTest : public ::testing::Test {
 protected:
  void SetUp() override { Make(WinefsOptions{}); }

  void Make(WinefsOptions options) {
    options_ = options;
    dev_ = std::make_unique<pmem::PmDevice>(kDevSize);
    pm_ = std::make_unique<pmem::Pm>(dev_.get());
    fs_ = std::make_unique<WinefsFs>(pm_.get(), options_);
    ASSERT_TRUE(fs_->Mkfs().ok());
    ASSERT_TRUE(fs_->Mount().ok());
    v_ = std::make_unique<vfs::Vfs>(fs_.get());
  }

  void Remount() {
    fs_ = std::make_unique<WinefsFs>(pm_.get(), options_);
    common::Status st = fs_->Mount();
    ASSERT_TRUE(st.ok()) << st.ToString();
    v_ = std::make_unique<vfs::Vfs>(fs_.get());
  }

  WinefsOptions options_;
  std::unique_ptr<pmem::PmDevice> dev_;
  std::unique_ptr<pmem::Pm> pm_;
  std::unique_ptr<WinefsFs> fs_;
  std::unique_ptr<vfs::Vfs> v_;
};

TEST_F(WinefsTest, StrictModeGuaranteesAtomicWrites) {
  EXPECT_TRUE(fs_->Guarantees().atomic_write);
  Make(WinefsOptions{.strict = false});
  EXPECT_FALSE(fs_->Guarantees().atomic_write);
}

TEST_F(WinefsTest, MagicDiffersFromPmfs) {
  // The superblock identifies the system; a pmfs mount must refuse it.
  pmfs::PmfsFs as_pmfs(pm_.get(), pmfs::PmfsOptions{});
  EXPECT_EQ(as_pmfs.Mount().code(), ErrorCode::kCorruption);
}

TEST_F(WinefsTest, CowWritePreservesOldDataOnRemount) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> a(8192, 'a');
  ASSERT_TRUE(v_->Pwrite(*fd, a.data(), a.size(), 0).ok());
  std::vector<uint8_t> b(4096, 'b');
  ASSERT_TRUE(v_->Pwrite(*fd, b.data(), b.size(), 2048).ok());
  Remount();
  auto content = v_->ReadFile("/f");
  ASSERT_EQ(content->size(), 8192u);
  EXPECT_EQ((*content)[2047], 'a');
  EXPECT_EQ((*content)[2048], 'b');
  EXPECT_EQ((*content)[6143], 'b');
  EXPECT_EQ((*content)[6144], 'a');
}

TEST_F(WinefsTest, UnalignedWriteStillCorrectWhenFixed) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(1001, 'u');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 3).ok());
  Remount();
  auto content = v_->ReadFile("/f");
  ASSERT_EQ(content->size(), 1004u);
  EXPECT_EQ((*content)[0], 0);
  EXPECT_EQ((*content)[3], 'u');
  EXPECT_EQ((*content)[1003], 'u');
}

TEST_F(WinefsTest, PerCpuJournalsOccupyDistinctRegions) {
  // Exercise ops on all four CPUs via the cpu hint, then verify every
  // journal region is quiescent (valid == 0).
  for (int cpu_fds = 1; cpu_fds <= winefs::kNumCpus; ++cpu_fds) {
    fs_->SetCpuHint(cpu_fds);
    auto ino = fs_->Create(fs_->RootIno(), "c" + std::to_string(cpu_fds));
    ASSERT_TRUE(ino.ok());
  }
  for (int cpu = 0; cpu < winefs::kNumCpus; ++cpu) {
    uint64_t base = pmfs::kJournalOff + cpu * winefs::kJournalStride;
    EXPECT_EQ(pm_->Load<uint64_t>(base), 0u) << "cpu " << cpu;
  }
  Remount();
  EXPECT_EQ(v_->ReadDir("/")->size(), 4u);
}

TEST_F(WinefsTest, RecoveryReplaysAllCpuJournals) {
  // Leave a valid uncommitted transaction in each CPU journal and verify a
  // (fixed) mount rolls every one of them back.
  uint64_t scratch = pmfs::InodeOff(210);
  pm_->StoreFlush<uint64_t>(scratch, 0x5050);
  for (int cpu = 0; cpu < winefs::kNumCpus; ++cpu) {
    uint64_t base = pmfs::kJournalOff + cpu * winefs::kJournalStride;
    pm_->Store<uint64_t>(base + 8, 1);
    pm_->Store<uint64_t>(base + 16, scratch + cpu * 8);
    pm_->Store<uint64_t>(base + 24, 0x6000 + cpu);
    pm_->FlushBuffer(base + 8, 24);
    pm_->Fence();
    pm_->StoreFlush<uint64_t>(base, 1);
    pm_->Fence();
  }
  Remount();
  for (int cpu = 0; cpu < winefs::kNumCpus; ++cpu) {
    uint64_t base = pmfs::kJournalOff + cpu * winefs::kJournalStride;
    EXPECT_EQ(pm_->Load<uint64_t>(base), 0u) << "cpu " << cpu;
    EXPECT_EQ(pm_->Load<uint64_t>(scratch + cpu * 8),
              static_cast<uint64_t>(0x6000 + cpu))
        << "cpu " << cpu;
  }
}

TEST_F(WinefsTest, AlignmentAwareAllocatorSeparatesMetadataAndData) {
  // Metadata blocks come from the low end of the free space and data blocks
  // from the high end: a directory's dentry block index must be lower than
  // a file's data block index.
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  auto fd = v_->Open("/f", OpenFlags{});
  std::vector<uint8_t> data(4096, 'd');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  auto root_dentry_block =
      pm_->Load<uint64_t>(pmfs::InodeOff(pmfs::kRootIno) + pmfs::kInoDirect);
  auto ino = fs_->Lookup(fs_->RootIno(), "f");
  auto file_data_block = pm_->Load<uint64_t>(
      pmfs::InodeOff(static_cast<uint32_t>(*ino)) + pmfs::kInoDirect);
  EXPECT_LT(root_dentry_block, file_data_block);
}

TEST_F(WinefsTest, CpuHintClampsToValidRange) {
  fs_->SetCpuHint(-5);
  EXPECT_TRUE(fs_->Create(fs_->RootIno(), "low").ok());
  fs_->SetCpuHint(1000);
  EXPECT_TRUE(fs_->Create(fs_->RootIno(), "high").ok());
  Remount();
  EXPECT_EQ(v_->ReadDir("/")->size(), 2u);
}

TEST_F(WinefsTest, NonStrictModeWritesInPlace) {
  Make(WinefsOptions{.strict = false});
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(4096, 'n');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  uint64_t block_before = 0;
  {
    auto ino = fs_->Lookup(fs_->RootIno(), "f");
    block_before = pm_->Load<uint64_t>(
        pmfs::InodeOff(static_cast<uint32_t>(*ino)) + pmfs::kInoDirect);
  }
  std::vector<uint8_t> again(4096, 'm');
  ASSERT_TRUE(v_->Pwrite(*fd, again.data(), again.size(), 0).ok());
  auto ino = fs_->Lookup(fs_->RootIno(), "f");
  uint64_t block_after = pm_->Load<uint64_t>(
      pmfs::InodeOff(static_cast<uint32_t>(*ino)) + pmfs::kInoDirect);
  EXPECT_EQ(block_before, block_after);  // overwrite did not relocate
}

TEST_F(WinefsTest, StrictModeRelocatesOnOverwrite) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(4096, 'n');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  auto ino = fs_->Lookup(fs_->RootIno(), "f");
  uint64_t block_before = pm_->Load<uint64_t>(
      pmfs::InodeOff(static_cast<uint32_t>(*ino)) + pmfs::kInoDirect);
  std::vector<uint8_t> again(4096, 'm');
  ASSERT_TRUE(v_->Pwrite(*fd, again.data(), again.size(), 0).ok());
  uint64_t block_after = pm_->Load<uint64_t>(
      pmfs::InodeOff(static_cast<uint32_t>(*ino)) + pmfs::kInoDirect);
  EXPECT_NE(block_before, block_after);  // copy-on-write relocated the block
}

}  // namespace
