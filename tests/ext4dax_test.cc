// ext4-DAX-specific unit tests: page-cache semantics, the jbd2-style
// journal commit, ordered-mode data writes, and the weak crash guarantees —
// data not fsynced is expected to vanish across a crash.
#include <gtest/gtest.h>

#include <memory>

#include "src/fs/ext4dax/ext4dax.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "src/vfs/vfs.h"

namespace {

using common::ErrorCode;
using ext4dax::Ext4DaxFs;
using ext4dax::Ext4Options;
using vfs::OpenFlags;

constexpr size_t kDevSize = 1024 * 1024;

class Ext4DaxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<pmem::PmDevice>(kDevSize);
    pm_ = std::make_unique<pmem::Pm>(dev_.get());
    fs_ = std::make_unique<Ext4DaxFs>(pm_.get(), Ext4Options{});
    ASSERT_TRUE(fs_->Mkfs().ok());
    ASSERT_TRUE(fs_->Mount().ok());
    v_ = std::make_unique<vfs::Vfs>(fs_.get());
  }

  // Crash simulation: mount a FRESH instance on the current media WITHOUT
  // unmounting (which would flush the caches). Everything that was not
  // committed is lost, exactly like a power failure.
  void CrashRemount() {
    fs_ = std::make_unique<Ext4DaxFs>(pm_.get(), Ext4Options{});
    common::Status st = fs_->Mount();
    ASSERT_TRUE(st.ok()) << st.ToString();
    v_ = std::make_unique<vfs::Vfs>(fs_.get());
  }

  std::unique_ptr<pmem::PmDevice> dev_;
  std::unique_ptr<pmem::Pm> pm_;
  std::unique_ptr<Ext4DaxFs> fs_;
  std::unique_ptr<vfs::Vfs> v_;
};

TEST_F(Ext4DaxTest, GuaranteesAreWeak) {
  EXPECT_FALSE(fs_->Guarantees().synchronous);
  EXPECT_FALSE(fs_->Guarantees().atomic_metadata);
  EXPECT_FALSE(fs_->Guarantees().atomic_write);
}

TEST_F(Ext4DaxTest, UnfsyncedMetadataIsLostOnCrash) {
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Mkdir("/d").ok());
  CrashRemount();
  EXPECT_FALSE(v_->Stat("/f").ok());
  EXPECT_FALSE(v_->Stat("/d").ok());
}

TEST_F(Ext4DaxTest, FsyncMakesFileDurable) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(5000, 'e');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->FsyncFd(*fd).ok());
  CrashRemount();
  auto content = v_->ReadFile("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 5000u);
  EXPECT_EQ((*content)[4999], 'e');
}

TEST_F(Ext4DaxTest, SyncMakesEverythingDurable) {
  ASSERT_TRUE(v_->Mkdir("/d").ok());
  auto fd = v_->Open("/d/f", OpenFlags{.create = true});
  uint8_t b = 's';
  ASSERT_TRUE(v_->Write(*fd, &b, 1).ok());
  ASSERT_TRUE(v_->Sync().ok());
  CrashRemount();
  EXPECT_TRUE(v_->Stat("/d").ok());
  EXPECT_EQ(v_->Stat("/d/f")->size, 1u);
}

TEST_F(Ext4DaxTest, FsyncOfOneFileLeavesOtherDataVolatile) {
  // The classic ext4 behaviour: the journal is global, so metadata (sizes)
  // of other files commit, but their data does not.
  auto fa = v_->Open("/a", OpenFlags{.create = true});
  auto fb = v_->Open("/b", OpenFlags{.create = true});
  std::vector<uint8_t> data(4096, 'x');
  ASSERT_TRUE(v_->Pwrite(*fa, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->Pwrite(*fb, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->FsyncFd(*fa).ok());  // only /a's data flushes
  CrashRemount();
  auto a = v_->ReadFile("/a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)[100], 'x');
  auto b = v_->ReadFile("/b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(), 4096u);   // size committed with the global journal...
  EXPECT_EQ((*b)[100], 0);       // ...but the data never reached media
}

TEST_F(Ext4DaxTest, UnmountFlushesEverything) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  uint8_t b = 'u';
  ASSERT_TRUE(v_->Write(*fd, &b, 1).ok());
  ASSERT_TRUE(fs_->Unmount().ok());
  CrashRemount();
  EXPECT_EQ(v_->Stat("/f")->size, 1u);
}

TEST_F(Ext4DaxTest, JournalReplayAppliesCommittedTransaction) {
  // Prepare durable state, then simulate a crash after the journal commit
  // record but before the checkpoint: recovery must replay the transaction.
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Sync().ok());
  // Fabricate a journal transaction rewriting /f's inode-table block with
  // a bumped size.
  uint64_t iblock = ext4dax::kInodeTableBlock +
                    2 / ext4dax::kInodesPerBlock;  // ino 2 lives in block 0
  std::vector<uint8_t> block =
      pm_->ReadVec(iblock * ext4dax::kBlockSize, ext4dax::kBlockSize);
  uint64_t new_size = 777;
  std::memcpy(block.data() + (2 % ext4dax::kInodesPerBlock) * 128 + 8,
              &new_size, 8);
  uint64_t header = ext4dax::kJournalHeaderBlock * ext4dax::kBlockSize;
  pm_->MemcpyNt(ext4dax::kJournalDataBlock * ext4dax::kBlockSize, block.data(),
                block.size());
  pm_->StoreFlush<uint64_t>(header + 24, iblock);  // tag
  pm_->StoreFlush<uint64_t>(header + 8, 1);        // count
  pm_->Fence();
  pm_->StoreFlush<uint64_t>(header, 1);  // commit record; crash before checkpoint
  pm_->Fence();
  CrashRemount();
  EXPECT_EQ(v_->Stat("/f")->size, 777u);
  EXPECT_EQ(pm_->Load<uint64_t>(header), 0u);  // journal retired
}

TEST_F(Ext4DaxTest, UncommittedJournalIsIgnored) {
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Sync().ok());
  uint64_t header = ext4dax::kJournalHeaderBlock * ext4dax::kBlockSize;
  // Tags and data but no commit record: replay must skip it.
  pm_->StoreFlush<uint64_t>(header + 8, 1);
  pm_->StoreFlush<uint64_t>(header + 24, ext4dax::kInodeTableBlock);
  pm_->Fence();
  CrashRemount();
  EXPECT_TRUE(v_->Stat("/f").ok());
}

TEST_F(Ext4DaxTest, JournalTagOutOfRangeIsCorruption) {
  uint64_t header = ext4dax::kJournalHeaderBlock * ext4dax::kBlockSize;
  pm_->StoreFlush<uint64_t>(header + 8, 1);
  pm_->StoreFlush<uint64_t>(header + 24, 1u << 30);  // absurd block number
  pm_->StoreFlush<uint64_t>(header, 1);
  Ext4DaxFs fs2(pm_.get(), Ext4Options{});
  EXPECT_EQ(fs2.Mount().code(), ErrorCode::kCorruption);
}

TEST_F(Ext4DaxTest, SubRegionLeavesTailOfDeviceUntouched) {
  // SplitFS reserves the device tail; ext4dax must confine itself to
  // fs_size.
  const uint64_t fs_size = 512 * 1024;
  pmem::PmDevice dev(kDevSize);
  pmem::Pm pm(&dev);
  // Paint the reserved tail.
  pm.MemsetNt(fs_size, 0xEE, kDevSize - fs_size);
  Ext4DaxFs fs(&pm, Ext4Options{.fs_size = fs_size});
  ASSERT_TRUE(fs.Mkfs().ok());
  ASSERT_TRUE(fs.Mount().ok());
  vfs::Vfs v(&fs);
  auto fd = v.Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(64 * 1024, 'q');
  ASSERT_TRUE(v.Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v.Sync().ok());
  for (uint64_t off = fs_size; off < kDevSize; off += 4096) {
    ASSERT_EQ(pm.Load<uint8_t>(off), 0xEE) << "offset " << off;
  }
}

TEST_F(Ext4DaxTest, ShrinkThenGrowReadsZeros) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(4096, 'z');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->Truncate("/f", 100).ok());
  ASSERT_TRUE(v_->Truncate("/f", 300).ok());
  ASSERT_TRUE(v_->Sync().ok());
  CrashRemount();
  auto content = v_->ReadFile("/f");
  ASSERT_EQ(content->size(), 300u);
  EXPECT_EQ((*content)[99], 'z');
  EXPECT_EQ((*content)[100], 0);
  EXPECT_EQ((*content)[299], 0);
}

TEST_F(Ext4DaxTest, FreedBlocksNotReusedUntilCommit) {
  // Ordered-mode safety: blocks released by an uncommitted truncate must
  // not take new data before the truncate commits.
  auto fd = v_->Open("/a", OpenFlags{.create = true});
  std::vector<uint8_t> data(8192, 'a');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->Sync().ok());
  ASSERT_TRUE(v_->Truncate("/a", 0).ok());  // frees blocks, uncommitted
  auto fb = v_->Open("/b", OpenFlags{.create = true});
  std::vector<uint8_t> fresh(8192, 'b');
  ASSERT_TRUE(v_->Pwrite(*fb, fresh.data(), fresh.size(), 0).ok());
  ASSERT_TRUE(v_->FsyncFd(*fb).ok());  // writes /b data in place (ordered)
  // Crash: the truncate of /a committed with the same global journal, but
  // even if it had not, /a's old data must be intact.
  CrashRemount();
  auto b = v_->ReadFile("/b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)[0], 'b');
}

}  // namespace

// ---------------------------------------------------------------------------
// Extended attributes (§4.1: tested on the weak-guarantee systems).
// ---------------------------------------------------------------------------

namespace xattrs {

using VecU8 = std::vector<uint8_t>;

TEST_F(Ext4DaxTest, XattrCrudRoundTrip) {
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->SetXattr("/f", "user.tag", VecU8{1, 2, 3}).ok());
  ASSERT_TRUE(v_->SetXattr("/f", "user.other", VecU8{9}).ok());
  auto value = v_->GetXattr("/f", "user.tag");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, (VecU8{1, 2, 3}));
  auto names = v_->ListXattrs("/f");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
  // Overwrite in place.
  ASSERT_TRUE(v_->SetXattr("/f", "user.tag", VecU8{7, 7}).ok());
  EXPECT_EQ(*v_->GetXattr("/f", "user.tag"), (VecU8{7, 7}));
  EXPECT_EQ(v_->ListXattrs("/f")->size(), 2u);
  ASSERT_TRUE(v_->RemoveXattr("/f", "user.tag").ok());
  EXPECT_EQ(v_->GetXattr("/f", "user.tag").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(v_->RemoveXattr("/f", "user.tag").code(), ErrorCode::kNotFound);
}

TEST_F(Ext4DaxTest, XattrLimitsEnforced) {
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  EXPECT_EQ(v_->SetXattr("/f", std::string(40, 'n'), VecU8{1}).code(),
            ErrorCode::kInvalid);
  EXPECT_EQ(v_->SetXattr("/f", "user.big", VecU8(200, 1)).code(),
            ErrorCode::kInvalid);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(v_->SetXattr("/f", "a" + std::to_string(i), VecU8{1}).ok());
  }
  EXPECT_EQ(v_->SetXattr("/f", "one.too.many", VecU8{1}).code(),
            ErrorCode::kNoSpace);
}

TEST_F(Ext4DaxTest, XattrsDurableOnlyAfterFsync) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  ASSERT_TRUE(v_->SetXattr("/f", "user.keep", VecU8{5}).ok());
  ASSERT_TRUE(v_->FsyncFd(*fd).ok());
  ASSERT_TRUE(v_->SetXattr("/f", "user.lost", VecU8{6}).ok());
  CrashRemount();
  EXPECT_TRUE(v_->GetXattr("/f", "user.keep").ok());
  EXPECT_EQ(v_->GetXattr("/f", "user.lost").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(Ext4DaxTest, XattrBlockReleasedWithInode) {
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->SetXattr("/f", "user.tag", VecU8{1}).ok());
  ASSERT_TRUE(v_->Sync().ok());
  ASSERT_TRUE(v_->Unlink("/f").ok());
  ASSERT_TRUE(v_->Sync().ok());
  CrashRemount();
  // The freed xattr block must not confuse the allocator or the scan.
  ASSERT_TRUE(v_->Open("/g", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->SetXattr("/g", "user.tag", VecU8{2}).ok());
  ASSERT_TRUE(v_->Sync().ok());
  CrashRemount();
  EXPECT_EQ(*v_->GetXattr("/g", "user.tag"), (VecU8{2}));
}

TEST_F(Ext4DaxTest, XattrsOnDirectoriesWork) {
  ASSERT_TRUE(v_->Mkdir("/d").ok());
  ASSERT_TRUE(v_->SetXattr("/d", "user.dirattr", VecU8{4, 2}).ok());
  ASSERT_TRUE(v_->Sync().ok());
  CrashRemount();
  EXPECT_EQ(*v_->GetXattr("/d", "user.dirattr"), (VecU8{4, 2}));
}

}  // namespace xattrs
