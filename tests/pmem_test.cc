#include <gtest/gtest.h>

#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "src/pmem/trace.h"

namespace {

using pmem::MarkerKind;
using pmem::Pm;
using pmem::PmDevice;
using pmem::PmOp;
using pmem::PmOpKind;
using pmem::TraceLogger;
using pmem::UndoRecorder;

TEST(PmDevice, StartsZeroed) {
  PmDevice dev(1024);
  for (size_t i = 0; i < dev.size(); ++i) {
    EXPECT_EQ(dev.raw()[i], 0);
  }
}

// ---- Page-granular copy-on-write overlays ----

std::vector<uint8_t> PatternBase(size_t n) {
  std::vector<uint8_t> base(n);
  for (size_t i = 0; i < n; ++i) {
    base[i] = static_cast<uint8_t>(i * 13 + 1);
  }
  return base;
}

TEST(PmDevice, OverlayReadsThroughToBase) {
  const std::vector<uint8_t> base = PatternBase(3 * PmDevice::kPageSize);
  PmDevice dev(&base);
  EXPECT_TRUE(dev.is_overlay());
  EXPECT_EQ(dev.size(), base.size());
  EXPECT_EQ(dev.dirty_page_count(), 0u);
  uint8_t buf[64];
  dev.Read(PmDevice::kPageSize + 5, buf, sizeof(buf));
  EXPECT_EQ(0, memcmp(buf, base.data() + PmDevice::kPageSize + 5, sizeof(buf)));
  EXPECT_EQ(dev.Snapshot(), base);
}

TEST(PmDevice, OverlayWriteIsolatedFromBase) {
  const std::vector<uint8_t> base = PatternBase(3 * PmDevice::kPageSize);
  const std::vector<uint8_t> before = base;
  PmDevice dev(&base);
  uint8_t data[16];
  memset(data, 0xee, sizeof(data));
  dev.Write(PmDevice::kPageSize + 100, data, sizeof(data));
  EXPECT_EQ(base, before);  // the shared base never changes
  EXPECT_EQ(dev.dirty_page_count(), 1u);
  uint8_t buf[16];
  dev.Read(PmDevice::kPageSize + 100, buf, sizeof(buf));
  EXPECT_EQ(0, memcmp(buf, data, sizeof(data)));
  // The rest of the dirtied page still shows base bytes.
  dev.Read(PmDevice::kPageSize, buf, 16);
  EXPECT_EQ(0, memcmp(buf, base.data() + PmDevice::kPageSize, 16));
}

TEST(PmDevice, OverlayWriteSpanningPagesMatchesDeepCopy) {
  const std::vector<uint8_t> base = PatternBase(4 * PmDevice::kPageSize);
  PmDevice overlay(&base);
  PmDevice deep(base);  // full private copy
  uint8_t data[3 * PmDevice::kPageSize];
  for (size_t i = 0; i < sizeof(data); ++i) {
    data[i] = static_cast<uint8_t>(i * 31);
  }
  // Crosses three page boundaries starting mid-page.
  overlay.Write(PmDevice::kPageSize / 2, data, sizeof(data));
  deep.Write(PmDevice::kPageSize / 2, data, sizeof(data));
  overlay.Fill(2 * PmDevice::kPageSize + 7, 0x3c, 900);
  deep.Fill(2 * PmDevice::kPageSize + 7, 0x3c, 900);
  EXPECT_EQ(overlay.Snapshot(), deep.Snapshot());
}

TEST(PmDevice, OverlayViewGathersAcrossCleanAndDirtyPages) {
  const std::vector<uint8_t> base = PatternBase(3 * PmDevice::kPageSize);
  PmDevice dev(&base);
  uint8_t data[8];
  memset(data, 0x42, sizeof(data));
  dev.Write(PmDevice::kPageSize, data, sizeof(data));  // dirty page 1 only
  // A view over clean page 0 and dirty page 1 must splice both sources.
  const size_t off = PmDevice::kPageSize - 4;
  const uint8_t* view = dev.View(off, 12);
  EXPECT_EQ(0, memcmp(view, base.data() + off, 4));
  EXPECT_EQ(0, memcmp(view + 4, data, 8));
  // A view entirely inside one clean page aliases the base (no copy).
  EXPECT_EQ(dev.View(16, 32), base.data() + 16);
}

TEST(PmDevice, OverlayHandlesUnalignedDeviceSize) {
  const std::vector<uint8_t> base = PatternBase(PmDevice::kPageSize + 100);
  PmDevice dev(&base);
  uint8_t byte = 0x99;
  dev.Write(base.size() - 1, &byte, 1);  // dirties the short tail page
  std::vector<uint8_t> snap = dev.Snapshot();
  EXPECT_EQ(snap.size(), base.size());
  EXPECT_EQ(snap.back(), 0x99);
  EXPECT_EQ(0, memcmp(snap.data(), base.data(), base.size() - 1));
}

TEST(PmDevice, OverlayRestoreReplacesContents) {
  const std::vector<uint8_t> base = PatternBase(2 * PmDevice::kPageSize);
  PmDevice dev(&base);
  std::vector<uint8_t> other(base.size(), 0x77);
  dev.Restore(other);
  EXPECT_EQ(dev.Snapshot(), other);
  EXPECT_EQ(base, PatternBase(2 * PmDevice::kPageSize));  // still untouched
}

// ---- Poison-range coalescing ----

TEST(PmDevice, PoisonCoalescesOverlappingAndAdjacentRanges) {
  PmDevice dev(4096);
  dev.Poison(10, 10);  // [10, 20)
  dev.Poison(15, 10);  // overlaps -> [10, 25)
  EXPECT_EQ(dev.poison_range_count(), 1u);
  dev.Poison(25, 5);  // adjacent -> [10, 30)
  EXPECT_EQ(dev.poison_range_count(), 1u);
  dev.Poison(50, 5);  // disjoint
  EXPECT_EQ(dev.poison_range_count(), 2u);
  dev.Poison(20, 35);  // bridges both -> [10, 55)
  EXPECT_EQ(dev.poison_range_count(), 1u);
  EXPECT_FALSE(dev.PoisonOverlaps(9, 1));
  EXPECT_TRUE(dev.PoisonOverlaps(10, 1));
  EXPECT_TRUE(dev.PoisonOverlaps(54, 1));
  EXPECT_FALSE(dev.PoisonOverlaps(55, 1));
  EXPECT_TRUE(dev.PoisonOverlaps(0, 4096));
  dev.ClearPoison();
  EXPECT_FALSE(dev.poisoned());
  EXPECT_FALSE(dev.PoisonOverlaps(10, 45));
}

TEST(PmDevice, RepeatedOverlappingPoisonStaysBounded) {
  PmDevice dev(1 << 20);
  // The recovery-retry shape that used to grow the range list without
  // bound: the same region re-poisoned every attempt.
  for (int i = 0; i < 1000; ++i) {
    dev.Poison(100 + (i % 7), 64);
  }
  EXPECT_EQ(dev.poison_range_count(), 1u);
  EXPECT_TRUE(dev.PoisonOverlaps(100, 1));
  EXPECT_FALSE(dev.PoisonOverlaps(0, 100));
}

TEST(Pm, TemporalStoreVisibleImmediately) {
  PmDevice dev(1024);
  Pm pm(&dev);
  pm.Store<uint64_t>(64, 0xdeadbeef);
  EXPECT_EQ(pm.Load<uint64_t>(64), 0xdeadbeefu);
}

TEST(Pm, NtStoreWritesThrough) {
  PmDevice dev(1024);
  Pm pm(&dev);
  uint8_t data[16] = {1, 2, 3, 4};
  pm.MemcpyNt(128, data, sizeof(data));
  EXPECT_EQ(pm.Load<uint8_t>(128), 1);
  EXPECT_EQ(pm.Load<uint8_t>(131), 4);
}

TEST(Pm, OutOfBoundsRaisesStickyFault) {
  PmDevice dev(256);
  Pm pm(&dev);
  EXPECT_FALSE(pm.faulted());
  pm.Store<uint64_t>(255, 1);  // crosses the end
  EXPECT_TRUE(pm.faulted());
  EXPECT_EQ(pm.fault().code(), common::ErrorCode::kOutOfBounds);
  // The access was suppressed.
  EXPECT_EQ(pm.Load<uint8_t>(255), 0);
  pm.ClearFault();
  EXPECT_FALSE(pm.faulted());
}

TEST(Pm, OobReadReturnsZeros) {
  PmDevice dev(64);
  Pm pm(&dev);
  EXPECT_EQ(pm.Load<uint64_t>(60), 0u);
  EXPECT_TRUE(pm.faulted());
}

TEST(TraceLogger, TemporalStoresOnlyReachTraceViaFlush) {
  PmDevice dev(1024);
  Pm pm(&dev);
  TraceLogger logger;
  pm.AddHook(&logger);
  pm.Store<uint64_t>(0, 7);  // temporal: not logged
  EXPECT_TRUE(logger.trace().empty());
  pm.FlushBuffer(0, 8);
  ASSERT_EQ(logger.trace().size(), 1u);
  const PmOp& op = logger.trace()[0];
  EXPECT_EQ(op.kind, PmOpKind::kFlush);
  EXPECT_EQ(op.off, 0u);
  ASSERT_EQ(op.data.size(), 8u);
  EXPECT_EQ(op.data[0], 7);  // contents captured at flush time
}

TEST(TraceLogger, NtStoreAndFenceLogged) {
  PmDevice dev(1024);
  Pm pm(&dev);
  TraceLogger logger;
  pm.AddHook(&logger);
  uint8_t data[4] = {9, 9, 9, 9};
  pm.MemcpyNt(16, data, 4);
  pm.Fence();
  ASSERT_EQ(logger.trace().size(), 2u);
  EXPECT_EQ(logger.trace()[0].kind, PmOpKind::kNtStore);
  EXPECT_EQ(logger.trace()[1].kind, PmOpKind::kFence);
}

TEST(TraceLogger, MarkersAnnotateSyscallIndex) {
  PmDevice dev(1024);
  Pm pm(&dev);
  TraceLogger logger;
  pm.AddHook(&logger);
  pm.Marker(MarkerKind::kSyscallBegin, 3, "creat");
  pm.FlushBuffer(0, 8);
  pm.Marker(MarkerKind::kSyscallEnd, 3);
  pm.FlushBuffer(64, 8);  // distinct range: not absorbed by flush dedup
  ASSERT_EQ(logger.trace().size(), 4u);
  EXPECT_EQ(logger.trace()[1].syscall_index, 3);
  EXPECT_EQ(logger.trace()[3].syscall_index, -1);  // outside any syscall
}

TEST(TraceLogger, FlushDedupDropsIdenticalRecapture) {
  PmDevice dev(1024);
  Pm pm(&dev);
  TraceLogger logger;
  pm.AddHook(&logger);
  pm.Store<uint64_t>(0, 7);
  pm.FlushBuffer(0, 8);
  const size_t before = logger.trace().size();
  // Same range, same captured bytes, nothing in between: redundant.
  pm.FlushBuffer(0, 8);
  pm.FlushBuffer(0, 8);
  EXPECT_EQ(logger.trace().size(), before);
  pm.Fence();
  ASSERT_EQ(logger.trace().size(), before + 1);
  EXPECT_EQ(logger.trace().back().kind, PmOpKind::kFence);
}

TEST(TraceLogger, FlushDedupStopsAtInterveningOverlappingWrite) {
  PmDevice dev(1024);
  Pm pm(&dev);
  TraceLogger logger;
  pm.AddHook(&logger);
  // write X, flush; zero, flush; write X again, flush. The final flush
  // re-captures the first one's bytes, but the zero capture in between means
  // dropping it would zero the window's final image.
  pm.Store<uint64_t>(0, 7);
  pm.FlushBuffer(0, 8);
  pm.Store<uint64_t>(0, 0);
  pm.FlushBuffer(0, 8);
  pm.Store<uint64_t>(0, 7);
  pm.FlushBuffer(0, 8);
  ASSERT_EQ(logger.trace().size(), 3u);
  std::vector<uint8_t> image(1024, 0);
  for (const PmOp& op : logger.trace()) {
    pmem::ApplyOp(image, op);
  }
  EXPECT_EQ(image[0], 7);
}

TEST(TraceLogger, FlushDedupResetsAtFence) {
  PmDevice dev(1024);
  Pm pm(&dev);
  TraceLogger logger;
  pm.AddHook(&logger);
  pm.Store<uint64_t>(0, 7);
  pm.FlushBuffer(0, 8);
  pm.Fence();
  // A new epoch: the same capture must be logged again (the previous one is
  // already durable and no longer in flight).
  pm.FlushBuffer(0, 8);
  ASSERT_EQ(logger.trace().size(), 3u);
  EXPECT_EQ(logger.trace()[2].kind, PmOpKind::kFlush);
}

TEST(TraceLogger, TemporalLoggingRecordsStores) {
  PmDevice dev(1024);
  Pm pm(&dev);
  TraceLogger logger;
  logger.set_log_temporal(true);
  pm.AddHook(&logger);
  pm.Store<uint64_t>(0, 7);
  pm.FlushBuffer(0, 8);
  ASSERT_EQ(logger.trace().size(), 2u);
  EXPECT_EQ(logger.trace()[0].kind, PmOpKind::kStore);
  // kStore is volatile: the replayer must not treat it as in-flight.
  EXPECT_FALSE(logger.trace()[0].IsWrite());
  EXPECT_EQ(logger.trace()[1].kind, PmOpKind::kFlush);
}

TEST(TraceLogger, DisableStopsRecording) {
  PmDevice dev(1024);
  Pm pm(&dev);
  TraceLogger logger;
  pm.AddHook(&logger);
  logger.set_enabled(false);
  pm.FlushBuffer(0, 8);
  pm.Fence();
  EXPECT_TRUE(logger.trace().empty());
}

TEST(ApplyOp, ReplaysWriteOps) {
  std::vector<uint8_t> image(64, 0);
  PmOp op;
  op.kind = PmOpKind::kNtStore;
  op.off = 8;
  op.data = {1, 2, 3};
  pmem::ApplyOp(image, op);
  EXPECT_EQ(image[8], 1);
  EXPECT_EQ(image[10], 3);
  PmOp fence;
  fence.kind = PmOpKind::kFence;
  pmem::ApplyOp(image, fence);  // no effect
  EXPECT_EQ(image[8], 1);
}

TEST(UndoRecorder, RollbackRestoresExactBytes) {
  PmDevice dev(256);
  Pm pm(&dev);
  pm.Store<uint64_t>(0, 0x1111);
  pm.Store<uint64_t>(8, 0x2222);
  std::vector<uint8_t> before = dev.Snapshot();

  UndoRecorder undo;
  pm.AddHook(&undo);
  pm.Store<uint64_t>(0, 0x9999);
  uint8_t blob[32] = {0xff};
  pm.MemcpyNt(8, blob, sizeof(blob));
  pm.MemsetNt(100, 0xab, 50);
  EXPECT_NE(dev.Snapshot(), before);

  undo.Rollback(pm);
  EXPECT_EQ(dev.Snapshot(), before);
  EXPECT_EQ(undo.entry_count(), 0u);
}

TEST(UndoRecorder, OverlappingWritesRollBackInReverse) {
  PmDevice dev(64);
  Pm pm(&dev);
  pm.Store<uint32_t>(0, 0xaaaaaaaa);
  std::vector<uint8_t> before = dev.Snapshot();
  UndoRecorder undo;
  pm.AddHook(&undo);
  pm.Store<uint32_t>(0, 0xbbbbbbbb);
  pm.Store<uint32_t>(2, 0xcccccccc);  // overlaps the first
  undo.Rollback(pm);
  EXPECT_EQ(dev.Snapshot(), before);
}

TEST(Pm, SnapshotRestoreRoundTrip) {
  PmDevice dev(128);
  Pm pm(&dev);
  pm.Store<uint64_t>(0, 42);
  std::vector<uint8_t> snap = dev.Snapshot();
  pm.Store<uint64_t>(0, 43);
  dev.Restore(snap);
  EXPECT_EQ(pm.Load<uint64_t>(0), 42u);
}

// Property: replaying every write op of a trace over the starting image
// reproduces the final image (the replayer's core invariant).
TEST(Trace, FullReplayEqualsFinalImage) {
  PmDevice dev(4096);
  Pm pm(&dev);
  std::vector<uint8_t> base = dev.Snapshot();
  TraceLogger logger;
  pm.AddHook(&logger);
  // A mix of temporal+flush and NT traffic.
  for (int i = 0; i < 20; ++i) {
    pm.Store<uint64_t>(i * 64, i * 7 + 1);
    pm.FlushBuffer(i * 64, 8);
    uint8_t blob[32];
    memset(blob, i, sizeof(blob));
    pm.MemcpyNt(2048 + i * 32, blob, sizeof(blob));
    pm.Fence();
  }
  std::vector<uint8_t> replayed = base;
  for (const PmOp& op : logger.trace()) {
    pmem::ApplyOp(replayed, op);
  }
  EXPECT_EQ(replayed, dev.Snapshot());
}

}  // namespace
