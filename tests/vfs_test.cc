#include <gtest/gtest.h>

#include "src/fs/reference/reference_fs.h"
#include "src/vfs/vfs.h"

namespace {

using common::ErrorCode;
using vfs::OpenFlags;
using vfs::Vfs;

class VfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fs_.Mkfs().ok());
    ASSERT_TRUE(fs_.Mount().ok());
  }
  reffs::ReferenceFs fs_;
  Vfs v_{&fs_};
};

TEST(SplitPath, RootIsEmpty) {
  auto parts = vfs::SplitPath("/");
  ASSERT_TRUE(parts.ok());
  EXPECT_TRUE(parts->empty());
}

TEST(SplitPath, Components) {
  auto parts = vfs::SplitPath("/a/bb/ccc");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 3u);
  EXPECT_EQ((*parts)[0], "a");
  EXPECT_EQ((*parts)[2], "ccc");
}

TEST(SplitPath, RejectsRelativeAndEmptyComponents) {
  EXPECT_FALSE(vfs::SplitPath("a/b").ok());
  EXPECT_FALSE(vfs::SplitPath("").ok());
  EXPECT_FALSE(vfs::SplitPath("/a//b").ok());
  EXPECT_FALSE(vfs::SplitPath("/a/./b").ok());
  EXPECT_FALSE(vfs::SplitPath("/a/../b").ok());
}

TEST_F(VfsTest, OpenCreateAndStat) {
  auto fd = v_.Open("/f", OpenFlags{.create = true});
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(v_.Close(*fd).ok());
  auto st = v_.Stat("/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->type, vfs::FileType::kRegular);
  EXPECT_EQ(st->size, 0u);
  EXPECT_EQ(st->nlink, 1u);
}

TEST_F(VfsTest, OpenExclFailsOnExisting) {
  ASSERT_TRUE(v_.Open("/f", OpenFlags{.create = true}).ok());
  auto fd = v_.Open("/f", OpenFlags{.create = true, .excl = true});
  EXPECT_EQ(fd.status().code(), ErrorCode::kExists);
}

TEST_F(VfsTest, OpenMissingWithoutCreateFails) {
  EXPECT_EQ(v_.Open("/nope", OpenFlags{}).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(VfsTest, WriteAdvancesOffsetPwriteDoesNot) {
  auto fd = v_.Open("/f", OpenFlags{.create = true});
  ASSERT_TRUE(fd.ok());
  uint8_t data[5] = {'h', 'e', 'l', 'l', 'o'};
  ASSERT_EQ(*v_.Write(*fd, data, 5), 5u);
  ASSERT_EQ(*v_.Write(*fd, data, 5), 5u);
  ASSERT_EQ(*v_.Pwrite(*fd, data, 5, 0), 5u);
  auto st = v_.Stat("/f");
  EXPECT_EQ(st->size, 10u);
}

TEST_F(VfsTest, ReadBackThroughFd) {
  auto fd = v_.Open("/f", OpenFlags{.create = true});
  uint8_t data[4] = {1, 2, 3, 4};
  ASSERT_TRUE(v_.Pwrite(*fd, data, 4, 0).ok());
  uint8_t out[4] = {};
  ASSERT_EQ(*v_.Pread(*fd, out, 4, 0), 4u);
  EXPECT_EQ(out[3], 4);
  uint8_t seq[2];
  ASSERT_EQ(*v_.ReadFd(*fd, seq, 2), 2u);
  EXPECT_EQ(seq[0], 1);
  ASSERT_EQ(*v_.ReadFd(*fd, seq, 2), 2u);
  EXPECT_EQ(seq[0], 3);  // sequential read advanced
}

TEST_F(VfsTest, AppendModeWritesAtEof) {
  auto fd = v_.Open("/f", OpenFlags{.create = true});
  uint8_t data[3] = {'a', 'b', 'c'};
  ASSERT_TRUE(v_.Write(*fd, data, 3).ok());
  ASSERT_TRUE(v_.Close(*fd).ok());
  auto fd2 = v_.Open("/f", OpenFlags{.append = true});
  ASSERT_TRUE(v_.Write(*fd2, data, 3).ok());
  auto content = v_.ReadFile("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 6u);
}

TEST_F(VfsTest, TruncFlagEmptiesFile) {
  auto fd = v_.Open("/f", OpenFlags{.create = true});
  uint8_t data[3] = {'a', 'b', 'c'};
  ASSERT_TRUE(v_.Write(*fd, data, 3).ok());
  ASSERT_TRUE(v_.Close(*fd).ok());
  ASSERT_TRUE(v_.Open("/f", OpenFlags{.trunc = true}).ok());
  EXPECT_EQ(v_.Stat("/f")->size, 0u);
}

TEST_F(VfsTest, CloseInvalidFd) {
  EXPECT_EQ(v_.Close(42).code(), ErrorCode::kBadFd);
  EXPECT_EQ(v_.Close(-1).code(), ErrorCode::kBadFd);
}

TEST_F(VfsTest, FdSlotsReusedLowestFirst) {
  auto a = v_.Open("/a", OpenFlags{.create = true});
  auto b = v_.Open("/b", OpenFlags{.create = true});
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(v_.Close(*a).ok());
  auto c = v_.Open("/c", OpenFlags{.create = true});
  EXPECT_EQ(*c, *a);
}

TEST_F(VfsTest, StaleFdAfterUnlinkIsBadFd) {
  auto fd = v_.Open("/f", OpenFlags{.create = true});
  ASSERT_TRUE(v_.Unlink("/f").ok());
  uint8_t b = 0;
  EXPECT_EQ(v_.Write(*fd, &b, 1).status().code(), ErrorCode::kBadFd);
}

TEST_F(VfsTest, MkdirNested) {
  ASSERT_TRUE(v_.Mkdir("/d").ok());
  ASSERT_TRUE(v_.Mkdir("/d/e").ok());
  EXPECT_EQ(v_.Mkdir("/d/e").code(), ErrorCode::kExists);
  EXPECT_EQ(v_.Mkdir("/x/y").code(), ErrorCode::kNotFound);
  auto st = v_.Stat("/d");
  EXPECT_EQ(st->nlink, 3u);  // ".", ".." of child
}

TEST_F(VfsTest, UnlinkDirectoryRejected) {
  ASSERT_TRUE(v_.Mkdir("/d").ok());
  EXPECT_EQ(v_.Unlink("/d").code(), ErrorCode::kIsDir);
  EXPECT_TRUE(v_.Rmdir("/d").ok());
}

TEST_F(VfsTest, RmdirNonEmptyRejected) {
  ASSERT_TRUE(v_.Mkdir("/d").ok());
  ASSERT_TRUE(v_.Open("/d/f", OpenFlags{.create = true}).ok());
  EXPECT_EQ(v_.Rmdir("/d").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(v_.Unlink("/d/f").ok());
  EXPECT_TRUE(v_.Rmdir("/d").ok());
}

TEST_F(VfsTest, RemoveDispatchesByType) {
  ASSERT_TRUE(v_.Mkdir("/d").ok());
  ASSERT_TRUE(v_.Open("/f", OpenFlags{.create = true}).ok());
  EXPECT_TRUE(v_.Remove("/d").ok());
  EXPECT_TRUE(v_.Remove("/f").ok());
}

TEST_F(VfsTest, LinkBumpsNlink) {
  ASSERT_TRUE(v_.Open("/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_.Link("/f", "/g").ok());
  EXPECT_EQ(v_.Stat("/f")->nlink, 2u);
  EXPECT_EQ(v_.Stat("/g")->ino, v_.Stat("/f")->ino);
  ASSERT_TRUE(v_.Unlink("/f").ok());
  EXPECT_EQ(v_.Stat("/g")->nlink, 1u);
}

TEST_F(VfsTest, LinkToDirectoryRejected) {
  ASSERT_TRUE(v_.Mkdir("/d").ok());
  EXPECT_EQ(v_.Link("/d", "/e").code(), ErrorCode::kIsDir);
}

TEST_F(VfsTest, LinkExistingTargetRejected) {
  ASSERT_TRUE(v_.Open("/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_.Open("/g", OpenFlags{.create = true}).ok());
  EXPECT_EQ(v_.Link("/f", "/g").code(), ErrorCode::kExists);
}

TEST_F(VfsTest, RenameBasic) {
  ASSERT_TRUE(v_.Open("/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_.Rename("/f", "/g").ok());
  EXPECT_FALSE(v_.Stat("/f").ok());
  EXPECT_TRUE(v_.Stat("/g").ok());
}

TEST_F(VfsTest, RenameOverwritesFile) {
  auto fd = v_.Open("/f", OpenFlags{.create = true});
  uint8_t data[3] = {'x', 'y', 'z'};
  ASSERT_TRUE(v_.Write(*fd, data, 3).ok());
  ASSERT_TRUE(v_.Open("/g", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_.Rename("/f", "/g").ok());
  EXPECT_EQ(v_.Stat("/g")->size, 3u);
  EXPECT_FALSE(v_.Stat("/f").ok());
}

TEST_F(VfsTest, RenameDirOntoNonEmptyDirRejected) {
  ASSERT_TRUE(v_.Mkdir("/a").ok());
  ASSERT_TRUE(v_.Mkdir("/b").ok());
  ASSERT_TRUE(v_.Open("/b/f", OpenFlags{.create = true}).ok());
  EXPECT_EQ(v_.Rename("/a", "/b").code(), ErrorCode::kNotEmpty);
}

TEST_F(VfsTest, RenameTypeMismatchRejected) {
  ASSERT_TRUE(v_.Mkdir("/d").ok());
  ASSERT_TRUE(v_.Open("/f", OpenFlags{.create = true}).ok());
  EXPECT_EQ(v_.Rename("/d", "/f").code(), ErrorCode::kNotDir);
  EXPECT_EQ(v_.Rename("/f", "/d").code(), ErrorCode::kIsDir);
}

TEST_F(VfsTest, RenameToSelfIsNoOp) {
  ASSERT_TRUE(v_.Open("/f", OpenFlags{.create = true}).ok());
  EXPECT_TRUE(v_.Rename("/f", "/f").ok());
  EXPECT_TRUE(v_.Stat("/f").ok());
}

TEST_F(VfsTest, ReadDirSorted) {
  ASSERT_TRUE(v_.Open("/b", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_.Open("/a", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_.Mkdir("/c").ok());
  auto entries = v_.ReadDir("/");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].name, "a");
  EXPECT_EQ((*entries)[2].name, "c");
}

TEST_F(VfsTest, ReadFileWholeContents) {
  auto fd = v_.Open("/f", OpenFlags{.create = true});
  uint8_t data[6] = {'a', 'b', 'c', 'd', 'e', 'f'};
  ASSERT_TRUE(v_.Pwrite(*fd, data, 6, 0).ok());
  auto content = v_.ReadFile("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(std::string(content->begin(), content->end()), "abcdef");
}

TEST_F(VfsTest, PathThroughFileIsNotDir) {
  ASSERT_TRUE(v_.Open("/f", OpenFlags{.create = true}).ok());
  EXPECT_EQ(v_.Stat("/f/x").status().code(), ErrorCode::kNotDir);
  EXPECT_EQ(v_.Open("/f/x", OpenFlags{.create = true}).status().code(),
            ErrorCode::kNotDir);
}

TEST_F(VfsTest, OpenFdCountTracksOpens) {
  EXPECT_EQ(v_.open_fd_count(), 0);
  auto a = v_.Open("/a", OpenFlags{.create = true});
  auto b = v_.Open("/b", OpenFlags{.create = true});
  EXPECT_EQ(v_.open_fd_count(), 2);
  ASSERT_TRUE(v_.Close(*a).ok());
  EXPECT_EQ(v_.open_fd_count(), 1);
  ASSERT_TRUE(v_.Close(*b).ok());
}

TEST_F(VfsTest, FallocateLenZeroInvalid) {
  auto fd = v_.Open("/f", OpenFlags{.create = true});
  EXPECT_EQ(v_.FallocateFd(*fd, 0, 0, 0).code(), ErrorCode::kInvalid);
}

}  // namespace
