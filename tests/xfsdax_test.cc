// XFS-DAX-specific unit tests: extent-list mapping, delayed (logical item)
// logging, log replay, and weak crash guarantees.
#include <gtest/gtest.h>

#include <memory>

#include "src/fs/xfsdax/xfsdax.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "src/vfs/vfs.h"

namespace {

using common::ErrorCode;
using xfsdax::XfsDaxFs;
using xfsdax::XfsOptions;
using vfs::OpenFlags;

constexpr size_t kDevSize = 1024 * 1024;

class XfsDaxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<pmem::PmDevice>(kDevSize);
    pm_ = std::make_unique<pmem::Pm>(dev_.get());
    fs_ = std::make_unique<XfsDaxFs>(pm_.get(), XfsOptions{});
    ASSERT_TRUE(fs_->Mkfs().ok());
    ASSERT_TRUE(fs_->Mount().ok());
    v_ = std::make_unique<vfs::Vfs>(fs_.get());
  }

  // Power-failure simulation: fresh instance, no unmount.
  void CrashRemount() {
    fs_ = std::make_unique<XfsDaxFs>(pm_.get(), XfsOptions{});
    common::Status st = fs_->Mount();
    ASSERT_TRUE(st.ok()) << st.ToString();
    v_ = std::make_unique<vfs::Vfs>(fs_.get());
  }

  std::unique_ptr<pmem::PmDevice> dev_;
  std::unique_ptr<pmem::Pm> pm_;
  std::unique_ptr<XfsDaxFs> fs_;
  std::unique_ptr<vfs::Vfs> v_;
};

TEST_F(XfsDaxTest, GuaranteesAreWeak) {
  EXPECT_FALSE(fs_->Guarantees().synchronous);
}

TEST_F(XfsDaxTest, UnfsyncedStateIsLostOnCrash) {
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  CrashRemount();
  EXPECT_FALSE(v_->Stat("/f").ok());
}

TEST_F(XfsDaxTest, FsyncCommitsLogicalItems) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(5000, 'x');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->FsyncFd(*fd).ok());
  CrashRemount();
  auto content = v_->ReadFile("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 5000u);
  EXPECT_EQ((*content)[4999], 'x');
}

TEST_F(XfsDaxTest, SequentialWritesMergeIntoOneExtent) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> block(4096, 'm');
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(v_->Pwrite(*fd, block.data(), block.size(), i * 4096).ok());
  }
  ASSERT_TRUE(v_->FsyncFd(*fd).ok());
  CrashRemount();
  // The on-media inode must map the whole file with a single extent record.
  auto ino = fs_->Lookup(fs_->RootIno(), "f");
  ASSERT_TRUE(ino.ok());
  uint64_t nextents = pm_->Load<uint64_t>(
      xfsdax::kInodeTableBlock * xfsdax::kBlockSize +
      static_cast<uint64_t>(*ino) * xfsdax::kInodeSize + xfsdax::kInoNextents);
  EXPECT_EQ(nextents, 1u);
  EXPECT_EQ(v_->Stat("/f")->size, 8u * 4096);
}

TEST_F(XfsDaxTest, SparseFileUsesMultipleExtentsAndHolesReadZero) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  uint8_t b = 'h';
  ASSERT_TRUE(v_->Pwrite(*fd, &b, 1, 0).ok());
  ASSERT_TRUE(v_->Pwrite(*fd, &b, 1, 5 * 4096).ok());
  ASSERT_TRUE(v_->FsyncFd(*fd).ok());
  CrashRemount();
  auto content = v_->ReadFile("/f");
  ASSERT_EQ(content->size(), 5u * 4096 + 1);
  EXPECT_EQ((*content)[0], 'h');
  EXPECT_EQ((*content)[4096], 0);
  EXPECT_EQ((*content)[5 * 4096], 'h');
}

TEST_F(XfsDaxTest, ExtentListOverflowIsNoSpace) {
  // Alternating far-apart single blocks cannot merge; the 13th run fails.
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  uint8_t b = 'o';
  common::Status last = common::OkStatus();
  for (int i = 0; i < 30 && last.ok(); ++i) {
    last = v_->Pwrite(*fd, &b, 1, i * 2 * 4096).status();
  }
  EXPECT_EQ(last.code(), ErrorCode::kNoSpace);
}

TEST_F(XfsDaxTest, CommittedLogReplaysAfterCrash) {
  // Create + sync, then fabricate a committed-but-not-checkpointed log with
  // a size bump; recovery must replay it.
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Sync().ok());
  auto ino = fs_->Lookup(fs_->RootIno(), "f");
  xfsdax::LogItem item;
  item.type = static_cast<uint8_t>(xfsdax::ItemType::kSetInodeField);
  item.ino = static_cast<uint32_t>(*ino);
  item.field = xfsdax::kInoSize;
  item.value = 4242;
  uint64_t header = xfsdax::kLogStartBlock * xfsdax::kBlockSize;
  pm_->Memcpy(header + xfsdax::kLogHeaderSize, &item, sizeof(item));
  pm_->StoreFlush<uint64_t>(header + 16, 1);  // one item
  pm_->Fence();
  pm_->StoreFlush<uint64_t>(header, 1);  // commit record
  pm_->Fence();
  CrashRemount();
  EXPECT_EQ(v_->Stat("/f")->size, 4242u);
  EXPECT_EQ(pm_->Load<uint64_t>(header), 0u);  // log retired
}

TEST_F(XfsDaxTest, UncommittedLogIgnored) {
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Sync().ok());
  uint64_t header = xfsdax::kLogStartBlock * xfsdax::kBlockSize;
  pm_->StoreFlush<uint64_t>(header + 16, 5);  // items but no commit record
  CrashRemount();
  EXPECT_TRUE(v_->Stat("/f").ok());
  EXPECT_EQ(v_->Stat("/f")->size, 0u);
}

TEST_F(XfsDaxTest, BogusLogItemIsCorruption) {
  uint64_t header = xfsdax::kLogStartBlock * xfsdax::kBlockSize;
  xfsdax::LogItem item;
  item.type = 77;  // invalid
  pm_->Memcpy(header + xfsdax::kLogHeaderSize, &item, sizeof(item));
  pm_->StoreFlush<uint64_t>(header + 16, 1);
  pm_->StoreFlush<uint64_t>(header, 1);
  XfsDaxFs fs2(pm_.get(), XfsOptions{});
  EXPECT_EQ(fs2.Mount().code(), ErrorCode::kCorruption);
}

TEST_F(XfsDaxTest, BackgroundCheckpointKeepsLongWorkloadsRunning) {
  // Hundreds of unsynced metadata ops exceed the log capacity; the implicit
  // checkpoint must kick in rather than failing.
  for (int i = 0; i < 120; ++i) {
    std::string name = "/f" + std::to_string(i);
    ASSERT_TRUE(v_->Open(name, OpenFlags{.create = true}).ok()) << name;
    if (i % 3 == 0) {
      ASSERT_TRUE(v_->Unlink(name).ok());
    }
  }
  ASSERT_TRUE(v_->Sync().ok());
  CrashRemount();
  EXPECT_EQ(v_->ReadDir("/")->size(), 80u);
}

TEST_F(XfsDaxTest, TruncateSplitsExtentRuns) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(8 * 4096, 't');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->Truncate("/f", 3 * 4096 + 100).ok());
  ASSERT_TRUE(v_->Sync().ok());
  CrashRemount();
  auto content = v_->ReadFile("/f");
  ASSERT_EQ(content->size(), 3u * 4096 + 100);
  EXPECT_EQ((*content)[0], 't');
  EXPECT_EQ(content->back(), 't');
  // Shrink-then-grow must read zeros in the gap.
  ASSERT_TRUE(v_->Truncate("/f", 4 * 4096).ok());
  ASSERT_TRUE(v_->Sync().ok());
  CrashRemount();
  content = v_->ReadFile("/f");
  EXPECT_EQ((*content)[3 * 4096 + 100], 0);
  EXPECT_EQ((*content)[4 * 4096 - 1], 0);
}

TEST_F(XfsDaxTest, DentryBlocksRecycleWithoutGhosts) {
  // Fill a directory, delete everything, sync, recreate: stale dentries in
  // recycled blocks must not resurrect.
  for (int i = 0; i < 70; ++i) {
    ASSERT_TRUE(v_->Open("/g" + std::to_string(i), OpenFlags{.create = true}).ok());
  }
  ASSERT_TRUE(v_->Sync().ok());
  for (int i = 0; i < 70; ++i) {
    ASSERT_TRUE(v_->Unlink("/g" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(v_->Sync().ok());
  ASSERT_TRUE(v_->Open("/fresh", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Sync().ok());
  CrashRemount();
  auto entries = v_->ReadDir("/");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "fresh");
}

}  // namespace
