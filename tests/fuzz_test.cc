#include <gtest/gtest.h>

#include "src/core/fs_registry.h"
#include "src/fuzz/fuzz_engine.h"
#include "src/fuzz/triage.h"
#include "src/workload/ace.h"

namespace {

using chipmunk::BugReport;
using chipmunk::CheckKind;
using chipmunk::MakeBugConfig;
using chipmunk::MakeFsConfig;
using fuzz::ClusterReports;
using fuzz::FuzzOptions;
using fuzz::FuzzEngine;
using fuzz::TokenizeReport;
using fuzz::TokenSimilarity;
using vfs::BugId;

constexpr size_t kDev = 1024 * 1024;

BugReport MakeReport(CheckKind kind, std::string syscall, std::string detail) {
  BugReport report;
  report.fs = "novafs";
  report.kind = kind;
  report.syscall = std::move(syscall);
  report.detail = std::move(detail);
  return report;
}

TEST(Triage, TokensAreLowercasedDeduplicated) {
  BugReport report = MakeReport(CheckKind::kAtomicity, "rename /foo -> /bar",
                                "Rename RENAME lost at offset 4096");
  auto tokens = TokenizeReport(report);
  EXPECT_EQ(std::count(tokens.begin(), tokens.end(), "rename"), 1);
  // Numbers are dropped.
  for (const auto& t : tokens) {
    for (char c : t) {
      EXPECT_FALSE(isdigit(static_cast<unsigned char>(c)));
    }
  }
}

TEST(Triage, SimilarReportsCluster) {
  std::vector<BugReport> reports = {
      MakeReport(CheckKind::kAtomicity, "rename /foo -> /bar",
                 "/foo matches neither version: is absent, pre file, post "
                 "absent"),
      MakeReport(CheckKind::kAtomicity, "rename /A/foo -> /A/bar",
                 "/A/foo matches neither version: is absent, pre file, post "
                 "absent"),
      MakeReport(CheckKind::kMountFailure, "creat /x",
                 "file system failed to mount: corruption: log block without "
                 "magic header"),
  };
  auto clusters = ClusterReports(reports, 0.6);
  EXPECT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].members.size(), 2u);
}

TEST(Triage, SimilarityBounds) {
  auto a = TokenizeReport(MakeReport(CheckKind::kSynchrony, "write", "lost"));
  EXPECT_DOUBLE_EQ(TokenSimilarity(a, a), 1.0);
  auto b = TokenizeReport(
      MakeReport(CheckKind::kMountFailure, "mkdir", "corruption cycle"));
  EXPECT_LT(TokenSimilarity(a, b), 0.3);
}

// Random workloads (unaligned sizes, multiple descriptors, interleaved
// namespace churn — the shapes ACE cannot express) must produce zero reports
// on every fixed file system.
class FuzzerCleanAllFs : public ::testing::TestWithParam<const char*> {};

TEST_P(FuzzerCleanAllFs, NoReports) {
  auto config = MakeFsConfig(GetParam(), {}, kDev);
  ASSERT_TRUE(config.ok());
  FuzzOptions options;
  options.seed = 7;
  options.iterations = 60;
  FuzzEngine fuzzer(*config, options);
  auto result = fuzzer.Run();
  EXPECT_EQ(result.executed, 60u);
  EXPECT_TRUE(result.unique_reports.empty())
      << GetParam() << ": " << result.unique_reports[0].ToString();
  EXPECT_GT(result.coverage_points, 0u);
  EXPECT_GT(result.corpus_size, 0u);
}

INSTANTIATE_TEST_SUITE_P(Fs, FuzzerCleanAllFs,
                         ::testing::Values("novafs", "novafs-fortis", "pmfs", "winefs",
                                           "ext4dax", "xfsdax", "splitfs"));

TEST(Fuzzer, CoverageGrowsCorpus) {
  auto config = MakeFsConfig("pmfs", {}, kDev);
  ASSERT_TRUE(config.ok());
  FuzzOptions options;
  options.seed = 3;
  options.iterations = 40;
  FuzzEngine fuzzer(*config, options);
  auto result = fuzzer.Run();
  EXPECT_GT(result.corpus_size, 1u);
  EXPECT_GT(result.crash_states, 0u);
}

struct FuzzBugCase {
  BugId bug;
  size_t max_iterations;
};

// The fuzzer-only bugs (§4.3): ACE cannot express the triggering workloads
// (several descriptors on one file, unaligned sizes, per-CPU paths), but the
// fuzzer's templates reach them.
class FuzzerFindsBug : public ::testing::TestWithParam<FuzzBugCase> {};

TEST_P(FuzzerFindsBug, WithinIterationBudget) {
  auto config = MakeBugConfig(GetParam().bug, kDev);
  ASSERT_TRUE(config.ok());
  FuzzOptions options;
  options.seed = 42;
  FuzzEngine fuzzer(*config, options);
  bool found = false;
  for (size_t i = 0; i < GetParam().max_iterations && !found; ++i) {
    found = fuzzer.Step() > 0;
  }
  EXPECT_TRUE(found) << "fuzzer did not find bug "
                     << static_cast<int>(GetParam().bug);
}

INSTANTIATE_TEST_SUITE_P(
    FuzzerOnlyBugs, FuzzerFindsBug,
    ::testing::Values(FuzzBugCase{BugId::kWinefs19PerCpuJournalIndex, 800},
                      FuzzBugCase{BugId::kWinefs20UnalignedInPlace, 800},
                      FuzzBugCase{BugId::kSplitfs22RelinkOffsetDrop, 2500},
                      FuzzBugCase{BugId::kSplitfs23AppendCommitEarly, 2500},
                      FuzzBugCase{BugId::kNova4RenameInPlaceDelete, 400}),
    [](const ::testing::TestParamInfo<FuzzBugCase>& info) {
      return "bug" + std::to_string(static_cast<int>(info.param.bug));
    });

// The other half of the §4.3 story: ACE-shaped workloads cannot trigger the
// fuzzer-only bugs (verified over the full seq-1 + seq-2 sweeps in the
// Figure 3 bench; seq-1 here keeps the test fast).
class AceMissesBug : public ::testing::TestWithParam<BugId> {};

TEST_P(AceMissesBug, Seq1FindsNothing) {
  auto config = MakeBugConfig(GetParam(), kDev);
  ASSERT_TRUE(config.ok());
  chipmunk::Harness harness(*config);
  workload::ForEachAceWorkload(
      workload::AceOptions{.seq = 1}, [&](const workload::Workload& w) {
        auto stats = harness.TestWorkload(w);
        EXPECT_TRUE(stats.ok());
        EXPECT_TRUE(stats->clean()) << w.name << ": "
                                    << stats->reports[0].ToString();
        return true;
      });
}

INSTANTIATE_TEST_SUITE_P(
    FuzzerOnlyBugs, AceMissesBug,
    ::testing::Values(BugId::kWinefs19PerCpuJournalIndex,
                      BugId::kWinefs20UnalignedInPlace,
                      BugId::kSplitfs22RelinkOffsetDrop,
                      BugId::kSplitfs23AppendCommitEarly),
    [](const ::testing::TestParamInfo<BugId>& info) {
      return "bug" + std::to_string(static_cast<int>(info.param));
    });

}  // namespace
