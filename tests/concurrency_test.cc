// Concurrency subsystem tests: deterministic schedule construction
// (Interleave/Concurrentize/Reschedule), the conflict-template catalog, the
// linearization-based isolation oracle end to end against the two seeded
// cross-thread bugs (winefs 27, novafs 28), and the determinism contracts —
// replay-jobs invariance, fuzz-pipeline-width invariance, and interrupted
// resume — for multi-threaded campaigns.
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/concurrency/schedule.h"
#include "src/concurrency/templates.h"
#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/core/linearization.h"
#include "src/fuzz/fuzz_engine.h"
#include "src/store/campaign_store.h"
#include "src/vfs/bug.h"
#include "src/workload/serialize.h"
#include "src/workload/triggers.h"

namespace {

using chipmunk::CheckKind;
using chipmunk::FsConfig;
using chipmunk::Harness;
using chipmunk::HarnessOptions;
using chipmunk::MakeFsConfig;
using concurrency::ConflictTemplates;
using concurrency::Concurrentize;
using concurrency::Interleave;
using concurrency::RealizeTemplate;
using concurrency::Reschedule;
using concurrency::SplitThreads;
using concurrency::ThreadProgram;
using fuzz::FuzzEngine;
using fuzz::FuzzOptions;
using fuzz::FuzzResult;
using trigger::AllTriggerWorkloads;
using trigger::FindWorkload;
using workload::Op;
using workload::OpKind;
using workload::Workload;

constexpr size_t kDev = 1024 * 1024;

std::string FreshDir(const std::string& name) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / ("chipmunk-mt-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// The per-thread op subsequence of a realized workload, as strings.
std::vector<std::string> ThreadOps(const Workload& w, int tid) {
  std::vector<std::string> ops;
  for (const Op& op : w.ops) {
    if (op.tid == tid) {
      ops.push_back(op.ToString());
    }
  }
  return ops;
}

ThreadProgram CreatProgram(int tid, const std::string& prefix, int n) {
  ThreadProgram p;
  p.tid = tid;
  for (int i = 0; i < n; ++i) {
    Op op;
    op.kind = OpKind::kCreat;
    op.path = prefix + std::to_string(i);
    op.tid = tid;
    p.ops.push_back(op);
  }
  return p;
}

// ---------------------------------------------------------------------------
// Schedule construction
// ---------------------------------------------------------------------------

TEST(InterleaveTest, DeterministicAndProgramOrderPreserving) {
  const std::vector<ThreadProgram> programs = {CreatProgram(0, "/a", 6),
                                               CreatProgram(1, "/b", 6)};
  const Workload w1 = Interleave("mix", programs, /*schedule_seed=*/1, 0);
  const Workload w2 = Interleave("mix", programs, /*schedule_seed=*/1, 0);
  EXPECT_EQ(workload::Serialize(w1), workload::Serialize(w2));
  EXPECT_EQ(w1.threads, 2);
  EXPECT_EQ(w1.ops.size(), 12u);

  // Each thread's ops appear in program order within the realized schedule.
  for (int tid = 0; tid < 2; ++tid) {
    std::vector<std::string> expect;
    for (const Op& op : programs[tid].ops) {
      expect.push_back(op.ToString());
    }
    EXPECT_EQ(ThreadOps(w1, tid), expect) << "tid " << tid;
  }

  // A different seed (and a different ordinal under one seed) realizes a
  // different merge order for this program pair.
  const Workload other_seed = Interleave("mix", programs, 2, 0);
  EXPECT_NE(workload::Serialize(w1), workload::Serialize(other_seed));
  const Workload other_ordinal = Interleave("mix", programs, 1, 1);
  EXPECT_NE(workload::Serialize(w1), workload::Serialize(other_ordinal));
}

TEST(ConcurrentizeTest, FdSlotAffinityAndDeterminism) {
  using trigger::MkOpen;
  using trigger::MkPwrite;
  Workload st;
  st.name = "st";
  st.ops = {MkOpen("/f0", 0),          MkPwrite("/f0", 0, 0, 100),
            MkPwrite("/f0", 0, 100, 100), MkOpen("/f1", 1),
            MkPwrite("/f1", 1, 0, 100),   MkPwrite("/f1", 1, 100, 100)};

  const Workload mt = Concurrentize(st, 4, /*schedule_seed=*/3, /*ordinal=*/5);
  EXPECT_EQ(workload::Serialize(mt),
            workload::Serialize(Concurrentize(st, 4, 3, 5)));
  EXPECT_GT(mt.threads, 1);
  ASSERT_EQ(mt.ops.size(), st.ops.size());

  // Same op multiset, and every fd-slot op rides the thread that opened it.
  std::multiset<std::string> before, after;
  std::map<int, int> slot_tid;
  for (const Op& op : st.ops) {
    before.insert(op.ToString());
  }
  for (const Op& op : mt.ops) {
    after.insert(op.ToString());
    if (op.fd_slot >= 0) {
      if (op.kind == OpKind::kOpen) {
        slot_tid[op.fd_slot] = op.tid;
      } else {
        auto it = slot_tid.find(op.fd_slot);
        ASSERT_NE(it, slot_tid.end()) << "fd op before its open";
        EXPECT_EQ(op.tid, it->second) << op.ToString();
      }
    }
  }
  EXPECT_EQ(before, after);

  // threads <= 1 is the identity.
  EXPECT_EQ(workload::Serialize(Concurrentize(st, 1, 3, 5)),
            workload::Serialize(st));
}

TEST(RescheduleTest, PreservesProgramsUnderNewSeed) {
  const std::vector<ThreadProgram> programs = {CreatProgram(0, "/a", 5),
                                               CreatProgram(1, "/b", 5)};
  const Workload w = Interleave("mix", programs, 1, 0);
  const Workload r = Reschedule(w, /*schedule_seed=*/99, /*ordinal=*/0);
  EXPECT_EQ(workload::Serialize(r),
            workload::Serialize(Reschedule(w, 99, 0)));
  EXPECT_EQ(r.threads, w.threads);
  // Per-thread programs survive rescheduling bit-for-bit.
  for (int tid = 0; tid < 2; ++tid) {
    EXPECT_EQ(ThreadOps(r, tid), ThreadOps(w, tid)) << "tid " << tid;
  }
  // Single-threaded workloads pass through unchanged.
  Workload st;
  st.name = "st";
  st.ops = {programs[0].ops.front()};
  EXPECT_EQ(workload::Serialize(Reschedule(st, 99, 0)),
            workload::Serialize(st));
}

TEST(TemplateTest, CatalogRealizesTwoThreadConflicts) {
  const auto& templates = ConflictTemplates();
  EXPECT_EQ(templates.size(), 6u);
  std::set<std::string> names;
  for (const auto& t : templates) {
    names.insert(t.name);
    const Workload w = RealizeTemplate(t, /*schedule_seed=*/7, /*ordinal=*/0);
    EXPECT_EQ(w.threads, 2) << t.name;
    EXPECT_FALSE(w.ops.empty()) << t.name;
    // Both threads contribute ops to the realized schedule.
    EXPECT_FALSE(ThreadOps(w, 0).empty()) << t.name;
    EXPECT_FALSE(ThreadOps(w, 1).empty()) << t.name;
    EXPECT_EQ(workload::Serialize(w),
              workload::Serialize(RealizeTemplate(t, 7, 0)))
        << t.name;
  }
  EXPECT_EQ(names.size(), templates.size()) << "template names not unique";
}

// ---------------------------------------------------------------------------
// Isolation oracle: the two seeded cross-thread bugs
// ---------------------------------------------------------------------------

const Workload& MtTrigger() {
  static const std::vector<Workload> all = AllTriggerWorkloads();
  const Workload* w = FindWorkload(all, "mt-extend-race");
  EXPECT_NE(w, nullptr);
  return *w;
}

// Runs the mt-extend-race trigger against `fs` with `bug` enabled and
// returns the deduplicated reports.
std::vector<chipmunk::BugReport> RunMtTrigger(const std::string& fs,
                                              vfs::BugId bug,
                                              bool isolation_oracle,
                                              size_t jobs = 1) {
  auto config = MakeFsConfig(fs, vfs::BugSet::Single(bug), kDev);
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  HarnessOptions options;
  options.isolation_oracle = isolation_oracle;
  options.jobs = jobs;
  Harness harness(*config, options);
  auto stats = harness.TestWorkload(MtTrigger());
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return stats->reports;
}

TEST(IsolationOracleTest, Winefs27DetectedOnlyWithOracle) {
  const auto reports =
      RunMtTrigger("winefs", vfs::BugId::kWinefs27TornHandoffCommit, true);
  ASSERT_FALSE(reports.empty());
  bool isolation = false;
  for (const auto& r : reports) {
    isolation |= r.kind == CheckKind::kIsolationViolation;
  }
  EXPECT_TRUE(isolation) << reports.front().ToString();

  // Without the oracle the torn cross-CPU commit passes every single-
  // threaded check: the crash state mounts, fsck is clean, and no serial
  // oracle pair exists to compare against.
  EXPECT_TRUE(RunMtTrigger("winefs", vfs::BugId::kWinefs27TornHandoffCommit,
                           false)
                  .empty());
}

TEST(IsolationOracleTest, Nova28DetectedOnlyWithOracle) {
  const auto reports =
      RunMtTrigger("novafs", vfs::BugId::kNova28DramMediaRace, true);
  ASSERT_FALSE(reports.empty());
  bool isolation = false;
  for (const auto& r : reports) {
    isolation |= r.kind == CheckKind::kIsolationViolation;
  }
  EXPECT_TRUE(isolation) << reports.front().ToString();
  EXPECT_TRUE(
      RunMtTrigger("novafs", vfs::BugId::kNova28DramMediaRace, false).empty());
}

TEST(IsolationOracleTest, ReplayJobsDoNotChangeVerdicts) {
  const auto serial =
      RunMtTrigger("winefs", vfs::BugId::kWinefs27TornHandoffCommit, true, 1);
  const auto parallel =
      RunMtTrigger("winefs", vfs::BugId::kWinefs27TornHandoffCommit, true, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].ToString(), parallel[i].ToString());
  }
}

TEST(IsolationOracleTest, CleanTemplatesProduceNoReports) {
  // Fixed file systems must stay clean on realized conflict templates: the
  // oracle enumerates enough linearizations to explain every legal state.
  auto config = MakeFsConfig("novafs", vfs::BugSet(), kDev);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  Harness harness(*config, HarnessOptions{});
  const auto& templates = ConflictTemplates();
  for (size_t i = 0; i < 2; ++i) {
    const Workload w = RealizeTemplate(templates[i], 11, i);
    auto stats = harness.TestWorkload(w);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_TRUE(stats->reports.empty())
        << templates[i].name << ": " << stats->reports.front().ToString();
    EXPECT_GT(stats->lin_images, 0u) << templates[i].name;
  }
}

TEST(LinearizationTest, WindowBoundsImageCount) {
  auto config = MakeFsConfig("novafs", vfs::BugSet(), kDev);
  ASSERT_TRUE(config.ok());
  const Workload& w = MtTrigger();
  auto narrow = chipmunk::BuildLinearizationOracle(*config, w, 1);
  auto wide = chipmunk::BuildLinearizationOracle(*config, w, 4);
  ASSERT_TRUE(narrow.ok()) << narrow.status().ToString();
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  EXPECT_EQ(narrow->pairs.size(), w.ops.size());
  EXPECT_EQ(wide->pairs.size(), w.ops.size());
  // Widening the window never shrinks the linearization set.
  for (size_t i = 0; i < w.ops.size(); ++i) {
    EXPECT_GE(wide->pairs[i].size(), narrow->pairs[i].size()) << "op " << i;
  }
  EXPECT_LE(narrow->image_runs, wide->image_runs);
}

// ---------------------------------------------------------------------------
// Campaign determinism with --threads
// ---------------------------------------------------------------------------

FuzzOptions MtOptions(size_t iterations) {
  FuzzOptions o;
  o.seed = 7;
  o.iterations = iterations;
  o.threads = 4;
  o.schedule_seed = 21;
  o.checkpoint_interval = 5;
  return o;
}

FuzzResult RunMtCampaign(const FsConfig& config, const FuzzOptions& options) {
  FuzzEngine engine(config, options);
  common::Status opened = engine.OpenCampaign();
  EXPECT_TRUE(opened.ok()) << opened.ToString();
  return engine.Run();
}

void ExpectSameMtResult(const FuzzResult& a, const FuzzResult& b) {
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  EXPECT_EQ(a.crash_states, b.crash_states);
  EXPECT_EQ(a.coverage_points, b.coverage_points);
  EXPECT_EQ(a.report_hits, b.report_hits);
  ASSERT_EQ(a.unique_reports.size(), b.unique_reports.size());
  for (size_t i = 0; i < a.unique_reports.size(); ++i) {
    EXPECT_EQ(a.unique_reports[i].ToString(), b.unique_reports[i].ToString());
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].signature, b.timeline[i].signature) << i;
  }
}

TEST(MtCampaignTest, PipelineWidthDoesNotChangeResults) {
  auto config = MakeFsConfig("novafs", vfs::BugSet(), kDev);
  ASSERT_TRUE(config.ok());
  FuzzOptions serial = MtOptions(12);
  const FuzzResult a = RunMtCampaign(*config, serial);
  ASSERT_GT(a.crash_states, 0u);
  FuzzOptions wide = MtOptions(12);
  wide.jobs = 3;
  wide.harness.jobs = 2;
  ExpectSameMtResult(a, RunMtCampaign(*config, wide));
}

TEST(MtCampaignTest, InterruptedResumeMatchesUninterrupted) {
  auto config = MakeFsConfig("novafs", vfs::BugSet(), kDev);
  ASSERT_TRUE(config.ok());

  const std::string ref_dir = FreshDir("resume-ref");
  FuzzOptions ref = MtOptions(16);
  ref.campaign_dir = ref_dir;
  const FuzzResult reference = RunMtCampaign(*config, ref);

  // A run killed at the commit barrier after 6 of 16 workloads (the partial
  // run's prefix is identical to the uninterrupted run's), then resumed at
  // a different pipeline width.
  const std::string dir = FreshDir("resume-mt");
  FuzzOptions partial = MtOptions(6);
  partial.campaign_dir = dir;
  RunMtCampaign(*config, partial);

  FuzzOptions resumed = MtOptions(16);
  resumed.campaign_dir = dir;
  resumed.resume = true;
  resumed.jobs = 2;
  FuzzEngine engine(*config, resumed);
  common::Status opened = engine.OpenCampaign();
  ASSERT_TRUE(opened.ok()) << opened.ToString();
  EXPECT_EQ(engine.committed(), 6u);
  ExpectSameMtResult(reference, engine.Run());
}

TEST(MtCampaignTest, ScheduleIdentityGuardsResume) {
  auto config = MakeFsConfig("novafs", vfs::BugSet(), kDev);
  ASSERT_TRUE(config.ok());
  const std::string dir = FreshDir("resume-identity");
  FuzzOptions base = MtOptions(4);
  base.campaign_dir = dir;
  RunMtCampaign(*config, base);

  // threads and schedule_seed are campaign identity: a store written at
  // --threads 4 --schedule-seed 21 must reject a resume under either knob
  // changed (silently mixing schedules would corrupt the dedup index).
  FuzzOptions wrong_seed = MtOptions(4);
  wrong_seed.campaign_dir = dir;
  wrong_seed.resume = true;
  wrong_seed.schedule_seed = 22;
  FuzzEngine seed_engine(*config, wrong_seed);
  common::Status seed_status = seed_engine.OpenCampaign();
  ASSERT_FALSE(seed_status.ok());
  EXPECT_NE(seed_status.ToString().find("schedule_seed"), std::string::npos)
      << seed_status.ToString();

  FuzzOptions wrong_threads = MtOptions(4);
  wrong_threads.campaign_dir = dir;
  wrong_threads.resume = true;
  wrong_threads.threads = 2;
  FuzzEngine threads_engine(*config, wrong_threads);
  common::Status threads_status = threads_engine.OpenCampaign();
  ASSERT_FALSE(threads_status.ok());
  EXPECT_NE(threads_status.ToString().find("threads"), std::string::npos)
      << threads_status.ToString();
}

}  // namespace
