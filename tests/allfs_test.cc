// Cross-file-system properties:
//   - every FS matches the reference FS under randomized workloads;
//   - remounting after a clean unmount reproduces the exact visible state;
//   - with all bugs fixed, Chipmunk reports nothing on any trigger workload;
//   - with each Table 1 bug injected, Chipmunk reports it.
#include <gtest/gtest.h>

#include "src/common/crc32.h"
#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "tests/fs_test_util.h"
#include "tests/trigger_workloads.h"

namespace {

using chipmunk::FsConfig;
using chipmunk::Harness;
using chipmunk::HarnessOptions;
using chipmunk::MakeBugConfig;
using chipmunk::MakeFsConfig;
using chipmunk::RunStats;
using vfs::BugId;
using workload::Workload;

constexpr size_t kDev = 2 * 1024 * 1024;

// ---- Differential vs the reference FS. ----

struct DiffCase {
  const char* fs;
  uint64_t seed;
};

class AllFsDifferential : public ::testing::TestWithParam<DiffCase> {};

TEST_P(AllFsDifferential, MatchesReference) {
  auto config = MakeFsConfig(GetParam().fs, {}, kDev);
  ASSERT_TRUE(config.ok());
  pmem::PmDevice dev(kDev);
  pmem::Pm pm(&dev);
  auto fs = config->make(&pm);
  ASSERT_TRUE(fs->Mkfs().ok());
  ASSERT_TRUE(fs->Mount().ok());
  fs_test::RunDifferential(fs.get(), GetParam().seed, 220);
}

std::vector<DiffCase> DiffCases() {
  std::vector<DiffCase> cases;
  for (const char* fs :
       {"novafs", "novafs-fortis", "pmfs", "winefs", "ext4dax", "xfsdax",
        "splitfs"}) {
    for (uint64_t seed : {101, 202, 303}) {
      cases.push_back(DiffCase{fs, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllFsDifferential,
                         ::testing::ValuesIn(DiffCases()),
                         [](const ::testing::TestParamInfo<DiffCase>& info) {
                           std::string name = info.param.fs;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name + "_" + std::to_string(info.param.seed);
                         });

// ---- Remount equivalence (clean unmount). ----

class AllFsRemount : public ::testing::TestWithParam<DiffCase> {};

std::string CaptureTree(vfs::Vfs& v) {
  std::string dump;
  std::vector<std::string> stack = {"/"};
  while (!stack.empty()) {
    std::string p = stack.back();
    stack.pop_back();
    auto st = v.Stat(p);
    if (!st.ok()) {
      dump += p + "!" + std::string(common::ErrorCodeName(st.status().code()));
      continue;
    }
    dump += p + ":t" + std::to_string(static_cast<int>(st->type)) + ":s" +
            std::to_string(st->size) + ":n" + std::to_string(st->nlink);
    if (st->type == vfs::FileType::kDirectory) {
      auto entries = v.ReadDir(p);
      for (const auto& e : *entries) {
        stack.push_back(p == "/" ? "/" + e.name : p + "/" + e.name);
      }
    } else {
      auto content = v.ReadFile(p);
      if (content.ok()) {
        dump += ":c" +
                std::to_string(common::Crc32(content->data(), content->size()));
      } else {
        dump += ":cERR";
      }
    }
    dump += "\n";
  }
  return dump;
}

TEST_P(AllFsRemount, CleanRemountPreservesState) {
  auto config = MakeFsConfig(GetParam().fs, {}, kDev);
  ASSERT_TRUE(config.ok());
  pmem::PmDevice dev(kDev);
  pmem::Pm pm(&dev);
  auto fs = config->make(&pm);
  ASSERT_TRUE(fs->Mkfs().ok());
  ASSERT_TRUE(fs->Mount().ok());
  {
    vfs::Vfs v(fs.get());
    common::Rng rng(GetParam().seed);
    for (int i = 0; i < 150; ++i) {
      fs_test::RandOp op = fs_test::RandomOp(rng);
      std::string out;
      fs_test::ApplyOp(v, op, &out);
    }
    std::string before = CaptureTree(v);
    ASSERT_TRUE(fs->Unmount().ok());
    auto fs2 = config->make(&pm);
    ASSERT_TRUE(fs2->Mount().ok()) << fs2->Mount().ToString();
    vfs::Vfs v2(fs2.get());
    EXPECT_EQ(CaptureTree(v2), before) << GetParam().fs;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllFsRemount, ::testing::ValuesIn(DiffCases()),
                         [](const ::testing::TestParamInfo<DiffCase>& info) {
                           std::string name = info.param.fs;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name + "_" + std::to_string(info.param.seed);
                         });

// ---- Chipmunk is silent on fixed file systems. ----

class AllFsClean : public ::testing::TestWithParam<const char*> {};

TEST_P(AllFsClean, NoReportsOnAnyTriggerWorkload) {
  auto config = MakeFsConfig(GetParam(), {}, kDev);
  ASSERT_TRUE(config.ok());
  Harness harness(*config);
  for (const Workload& w : trigger::AllTriggerWorkloads()) {
    auto stats = harness.TestWorkload(w);
    ASSERT_TRUE(stats.ok()) << GetParam() << "/" << w.name << ": "
                            << stats.status().ToString();
    EXPECT_TRUE(stats->clean())
        << GetParam() << " workload " << w.name << ":\n"
        << (stats->reports.empty() ? "" : stats->reports[0].ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(Fs, AllFsClean,
                         ::testing::Values("novafs", "novafs-fortis", "pmfs", "winefs",
                                           "ext4dax", "xfsdax", "splitfs"));

// ---- Chipmunk detects every Table 1 bug. ----

class Table1Detection : public ::testing::TestWithParam<vfs::BugInfo> {};

TEST_P(Table1Detection, BugIsDetected) {
  const vfs::BugInfo& info = GetParam();
  auto config = MakeBugConfig(info.id, kDev);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  Harness harness(*config);
  auto workloads = trigger::AllTriggerWorkloads();
  const Workload* w = trigger::FindWorkload(workloads, trigger::TriggerFor(info.id));
  ASSERT_NE(w, nullptr) << "no trigger for bug " << static_cast<int>(info.id);
  auto stats = harness.TestWorkload(*w);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->clean())
      << "bug " << static_cast<int>(info.id) << " (" << info.consequence
      << ") not detected by workload " << w->name;
}

INSTANTIATE_TEST_SUITE_P(
    Bugs, Table1Detection, ::testing::ValuesIn(vfs::AllBugs()),
    [](const ::testing::TestParamInfo<vfs::BugInfo>& info) {
      return "bug" + std::to_string(static_cast<int>(info.param.id));
    });

}  // namespace
