#include <gtest/gtest.h>

#include <set>

#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/workload/ace.h"

namespace {

using chipmunk::Harness;
using chipmunk::HarnessOptions;
using chipmunk::MakeFsConfig;
using workload::AceOptions;
using workload::AceWorkloadCount;
using workload::BuildAceWorkload;
using workload::ForEachAceWorkload;
using workload::GenerateAce;
using workload::Op;
using workload::OpKind;
using workload::SyncPolicy;
using workload::Workload;

TEST(AceCounts, MatchesPaperPmMode) {
  // §3.4.1: "we generate 56 seq-1 tests, 3136 seq-2 tests".
  EXPECT_EQ(workload::AceCoreOps().size(), 56u);
  EXPECT_EQ(AceWorkloadCount(AceOptions{.seq = 1}), 56u);
  EXPECT_EQ(AceWorkloadCount(AceOptions{.seq = 2}), 3136u);
  // seq-3 metadata restricts the vocabulary to pwrite/link/unlink/rename.
  EXPECT_EQ(workload::AceMetadataCoreOps().size(), 28u);
  EXPECT_EQ(AceWorkloadCount(AceOptions{.seq = 3, .metadata_only = true}),
            21952u);
}

TEST(AceCounts, WeakModeAddsXattrsAndSyncPolicies) {
  // Weak mode adds the 6 xattr variants (§4.1) and enumerates the three
  // fsync-insertion policies.
  EXPECT_EQ(AceWorkloadCount(AceOptions{.seq = 1, .weak_mode = true}),
            (56u + 6u) * 3);
}

TEST(AceCounts, StreamingVisitsExactCount) {
  uint64_t n = 0;
  ForEachAceWorkload(AceOptions{.seq = 1}, [&n](const Workload&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 56u);
}

TEST(AceCounts, StreamingStopsEarly) {
  uint64_t n = 0;
  uint64_t visited =
      ForEachAceWorkload(AceOptions{.seq = 2}, [&n](const Workload&) {
        ++n;
        return n < 10;
      });
  EXPECT_EQ(visited, 10u);
}

// The random-access mapping behind ace campaigns: AceEnumerator::At(g) is
// exactly the (g+1)-th workload the streaming enumeration visits, for every
// sweep shape — this ordinal agreement is what makes a sharded or resumed
// ace campaign identical to the straight-through sweep.
TEST(AceEnumerator, AtMatchesStreamingOrder) {
  const AceOptions shapes[] = {
      AceOptions{.seq = 1},
      AceOptions{.seq = 2},
      AceOptions{.seq = 1, .weak_mode = true},
  };
  for (const AceOptions& options : shapes) {
    SCOPED_TRACE(options.seq);
    const workload::AceEnumerator enumerator(options);
    EXPECT_EQ(enumerator.count(), AceWorkloadCount(options));
    uint64_t g = 0;
    ForEachAceWorkload(options, [&](const Workload& w) {
      const Workload at = enumerator.At(g);
      EXPECT_EQ(at.name, w.name) << "ordinal " << g;
      EXPECT_EQ(at.ToString(), w.ToString()) << "ordinal " << g;
      ++g;
      // The seq-2 sweep is 3136 workloads; a prefix plus the tail transition
      // suffices for order agreement (the odometer has no other seams).
      return g < 200;
    });
    // And the last ordinal, where every odometer digit is at its maximum.
    const uint64_t last = enumerator.count() - 1;
    uint64_t seen = 0;
    Workload tail;
    ForEachAceWorkload(options, [&](const Workload& w) {
      if (seen++ == last) {
        tail = w;
        return false;
      }
      return true;
    });
    EXPECT_EQ(enumerator.At(last).ToString(), tail.ToString());
  }
}

TEST(AceStructure, MetadataVocabularyIsRestricted) {
  for (const Op& op : workload::AceMetadataCoreOps()) {
    EXPECT_TRUE(op.kind == OpKind::kPwrite || op.kind == OpKind::kWrite ||
                op.kind == OpKind::kLink || op.kind == OpKind::kUnlink ||
                op.kind == OpKind::kRename);
  }
}

TEST(AceStructure, DependenciesPrecedeCoreOps) {
  // rename /A/foo -> /bar must get mkdir /A and creat /A/foo setup ops.
  Op core;
  core.kind = OpKind::kRename;
  core.path = "/A/foo";
  core.path2 = "/bar";
  Workload w = BuildAceWorkload({core}, SyncPolicy::kNone, "t");
  ASSERT_EQ(w.ops.size(), 3u);
  EXPECT_EQ(w.ops[0].kind, OpKind::kMkdir);
  EXPECT_EQ(w.ops[0].path, "/A");
  EXPECT_TRUE(w.ops[0].setup);
  EXPECT_EQ(w.ops[1].kind, OpKind::kCreat);
  EXPECT_EQ(w.ops[1].path, "/A/foo");
  EXPECT_EQ(w.ops[2].kind, OpKind::kRename);
}

TEST(AceStructure, WritesAreWrappedInOpenClose) {
  Op core;
  core.kind = OpKind::kPwrite;
  core.path = "/foo";
  core.len = 100;
  Workload w = BuildAceWorkload({core}, SyncPolicy::kNone, "t");
  // creat dep, open, pwrite, close
  ASSERT_EQ(w.ops.size(), 4u);
  EXPECT_EQ(w.ops[1].kind, OpKind::kOpen);
  EXPECT_EQ(w.ops[2].kind, OpKind::kPwrite);
  EXPECT_EQ(w.ops[2].fd_slot, w.ops[1].fd_slot);
  EXPECT_EQ(w.ops[3].kind, OpKind::kClose);
}

TEST(AceStructure, AtMostOneFdOpenAtATime) {
  // ACE never holds two descriptors open simultaneously, which is why the
  // per-CPU and multiple-fd bugs are fuzzer-only (§4.3).
  ForEachAceWorkload(AceOptions{.seq = 2}, [](const Workload& w) {
    int open_now = 0;
    for (const Op& op : w.ops) {
      if (op.kind == OpKind::kOpen) {
        ++open_now;
      }
      if (op.kind == OpKind::kClose) {
        --open_now;
      }
      EXPECT_LE(open_now, 1) << w.ToString();
    }
    return true;
  });
}

TEST(AceStructure, WriteSizesAreEightByteAligned) {
  for (const Op& op : workload::AceCoreOps()) {
    if (op.kind == OpKind::kPwrite || op.kind == OpKind::kWrite) {
      EXPECT_EQ(op.len % 8, 0u);
      EXPECT_EQ(op.off % 8, 0u);
    }
  }
}

TEST(AceStructure, WeakModeInsertsPersistencePoints) {
  Op core;
  core.kind = OpKind::kCreat;
  core.path = "/foo";
  Workload w = BuildAceWorkload({core}, SyncPolicy::kFsync, "t");
  bool has_fsync = false;
  for (const Op& op : w.ops) {
    if (op.kind == OpKind::kFsync) {
      has_fsync = true;
      EXPECT_EQ(op.path, "/foo");
    }
  }
  EXPECT_TRUE(has_fsync);
}

TEST(AceStructure, NamesAreUniqueAcrossSeq1) {
  std::set<std::string> names;
  for (const Workload& w : GenerateAce(AceOptions{.seq = 1})) {
    EXPECT_TRUE(names.insert(w.name).second) << w.name;
  }
}

// The flagship integration property: every fixed file system survives the
// full ACE seq-1 sweep (all 56 workloads, exhaustive crash states for strong
// systems) with zero reports.
class AceSeq1Clean : public ::testing::TestWithParam<const char*> {};

TEST_P(AceSeq1Clean, NoReports) {
  const std::string fs_name = GetParam();
  const bool weak = fs_name == "ext4dax" || fs_name == "xfsdax";
  auto config = MakeFsConfig(GetParam(), {}, 1024 * 1024);
  ASSERT_TRUE(config.ok());
  Harness harness(*config);
  AceOptions options;
  options.seq = 1;
  options.weak_mode = weak;
  size_t crash_states = 0;
  ForEachAceWorkload(options, [&](const Workload& w) {
    auto stats = harness.TestWorkload(w);
    EXPECT_TRUE(stats.ok()) << w.name << ": " << stats.status().ToString();
    if (stats.ok()) {
      crash_states += stats->crash_states;
      EXPECT_TRUE(stats->clean())
          << GetParam() << " " << w.name << ":\n"
          << (stats->reports.empty() ? "" : stats->reports[0].ToString());
    }
    return true;
  });
  EXPECT_GT(crash_states, 0u);
}

INSTANTIATE_TEST_SUITE_P(Fs, AceSeq1Clean,
                         ::testing::Values("novafs", "novafs-fortis", "pmfs", "winefs",
                                           "ext4dax", "xfsdax", "splitfs"));

// seq-2 sweep (3136 workloads, exhaustive crash states) for the two fastest
// systems. The full six-system sweep lives in examples/ace_sweep (also run
// by the benches) and checks ~1.9M crash states clean.
class AceSeq2Clean : public ::testing::TestWithParam<const char*> {};

TEST_P(AceSeq2Clean, NoReports) {
  auto config = MakeFsConfig(GetParam(), {}, 1024 * 1024);
  ASSERT_TRUE(config.ok());
  Harness harness(*config);
  ForEachAceWorkload(AceOptions{.seq = 2}, [&](const Workload& w) {
    auto stats = harness.TestWorkload(w);
    EXPECT_TRUE(stats.ok()) << w.name;
    if (stats.ok() && !stats->clean()) {
      ADD_FAILURE() << GetParam() << " " << w.name << ": "
                    << stats->reports[0].ToString();
      return false;
    }
    return true;
  });
}

INSTANTIATE_TEST_SUITE_P(Fs, AceSeq2Clean, ::testing::Values("pmfs", "winefs"));

}  // namespace
