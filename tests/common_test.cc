#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "src/common/coverage.h"
#include "src/common/crc32.h"
#include "src/common/parse.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace {

using common::ErrorCode;
using common::Status;
using common::StatusOr;

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kOk);
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(Status, ErrorCarriesMessage) {
  Status st = common::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kNotFound);
  EXPECT_EQ(st.ToString(), "not-found: missing thing");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(common::ErrorCodeName(static_cast<ErrorCode>(c)), "unknown");
  }
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = common::Invalid("bad");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kInvalid);
}

StatusOr<int> Doubler(StatusOr<int> in) {
  ASSIGN_OR_RETURN(int x, in);
  return 2 * x;
}

TEST(StatusOr, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(common::NoSpace()).status().code(), ErrorCode::kNoSpace);
}

TEST(Rng, DeterministicPerSeed) {
  common::Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, BelowRespectsBound) {
  common::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  EXPECT_EQ(rng.Below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  common::Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, StreamsAreKeyedBySeedAndOrdinal) {
  // Same (seed, ordinal) -> same stream; either key changing -> a different
  // one. Consecutive ordinals must decorrelate (SplitMix64), since the
  // fuzzer keys workload streams by 0, 1, 2, ...
  common::Rng a = common::Rng::Stream(7, 3);
  common::Rng b = common::Rng::Stream(7, 3);
  common::Rng c = common::Rng::Stream(7, 4);
  common::Rng d = common::Rng::Stream(8, 3);
  uint64_t first = a.Next();
  EXPECT_EQ(first, b.Next());
  EXPECT_NE(first, c.Next());
  EXPECT_NE(first, d.Next());
}

TEST(Rng, SplitMix64MixesConsecutiveInputs) {
  // Adjacent inputs must land far apart — at least half the output bits
  // differ on average; require a loose 16 here.
  for (uint64_t x = 0; x < 64; ++x) {
    uint64_t diff =
        common::SplitMix64(x) ^ common::SplitMix64(x + 1);
    EXPECT_GE(__builtin_popcountll(diff), 16);
  }
}

TEST(Crc32, KnownVector) {
  // CRC32("123456789") with the zlib polynomial.
  EXPECT_EQ(common::Crc32("123456789", 9), 0xcbf43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(common::Crc32("", 0), 0u); }

TEST(Crc32, SensitiveToEveryByte) {
  uint8_t buf[64] = {};
  uint32_t base = common::Crc32(buf, sizeof(buf));
  for (size_t i = 0; i < sizeof(buf); ++i) {
    buf[i] = 1;
    EXPECT_NE(common::Crc32(buf, sizeof(buf)), base) << "byte " << i;
    buf[i] = 0;
  }
}

TEST(Coverage, HitAndDiff) {
  common::CoverageMap corpus;
  common::CoverageMap run;
  run.Hit(12345);
  EXPECT_EQ(run.CountNewAgainst(corpus), 1u);
  corpus.MergeFrom(run);
  EXPECT_EQ(run.CountNewAgainst(corpus), 0u);
  EXPECT_EQ(corpus.CountSet(), 1u);
}

TEST(Coverage, MacroNoOpWithoutMap) {
  common::CoverageMap::Current() = nullptr;
  CHIPMUNK_COV();  // must not crash
  common::CoverageMap map;
  common::CoverageMap::Current() = &map;
  CHIPMUNK_COV();
  EXPECT_EQ(map.CountSet(), 1u);
  common::CoverageMap::Current() = nullptr;
}

TEST(ParseUint64, AcceptsDigitsWithinBound) {
  uint64_t v = 0;
  EXPECT_TRUE(common::ParseUint64("0", 100, &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(common::ParseUint64("100", 100, &v));
  EXPECT_EQ(v, 100u);
  const uint64_t max = std::numeric_limits<uint64_t>::max();
  EXPECT_TRUE(common::ParseUint64("18446744073709551615", max, &v));
  EXPECT_EQ(v, max);
  EXPECT_TRUE(common::ParseUint64("007", 100, &v));  // leading zeros are fine
  EXPECT_EQ(v, 7u);
}

TEST(ParseUint64, RejectsGarbageAndLeavesOutputUntouched) {
  uint64_t v = 42;
  // Everything std::stoull / atoi would let through.
  for (const char* bad : {"", "-1", "+1", " 1", "1 ", "1x", "x1", "0x10",
                          "1.5", "--", "one"}) {
    EXPECT_FALSE(common::ParseUint64(bad, 1000, &v)) << "'" << bad << "'";
    EXPECT_EQ(v, 42u) << "'" << bad << "' clobbered the output";
  }
}

TEST(ParseUint64, RejectsValuesPastBound) {
  uint64_t v = 42;
  EXPECT_FALSE(common::ParseUint64("101", 100, &v));
  // One past uint64 max — the overflow guard, not the range check.
  EXPECT_FALSE(common::ParseUint64("18446744073709551616",
                                   std::numeric_limits<uint64_t>::max(), &v));
  EXPECT_FALSE(common::ParseUint64("99999999999999999999999999", 100, &v));
  EXPECT_EQ(v, 42u);
}

}  // namespace
