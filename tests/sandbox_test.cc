// Recovery sandbox, fault injection, and quarantine: a hostile file system
// whose recovery throws, loops, or reads out of bounds must never take the
// harness down, must produce deterministic kRecoveryFailure reports, and must
// leave a replayable quarantine entry — identically for every jobs value.
#include "src/core/sandbox.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/core/quarantine.h"
#include "src/core/report.h"
#include "src/fs/novafs/nova_fs.h"
#include "src/fuzz/fuzz_engine.h"
#include "src/pmem/fault.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "src/workload/triggers.h"

namespace chipmunk {
namespace {

constexpr size_t kDev = 1024 * 1024;

// ---- A hostile file system: novafs whose *recovery* mounts misbehave. ----
//
// Only mounts on an instance that never ran Mkfs are hostile — exactly the
// crash-state recovery mounts the checker performs. The record stage and the
// oracle (Mkfs + Mount on one instance) take the normal path, so the trace
// and crash-state enumeration are the real novafs ones.
enum class Hostility {
  kThrow,        // Mount throws std::runtime_error
  kLoop,         // Mount spins on media reads forever
  kOob,          // Mount reads far out of bounds
  kThrowAlways,  // every Mount throws, even after Mkfs (kills the record run)
};

class HostileFs : public vfs::FileSystem {
 public:
  HostileFs(pmem::Pm* pm, Hostility mode)
      : pm_(pm), mode_(mode), inner_(pm, novafs::NovaOptions{}) {}

  std::string Name() const override { return "hostile"; }
  vfs::CrashGuarantees Guarantees() const override {
    return inner_.Guarantees();
  }

  common::Status Mkfs() override {
    formatted_ = true;
    return inner_.Mkfs();
  }

  common::Status Mount() override {
    if (mode_ == Hostility::kThrowAlways) {
      throw std::runtime_error("hostile mount (always)");
    }
    if (!formatted_) {
      switch (mode_) {
        case Hostility::kThrow:
          throw std::runtime_error("hostile recovery mount");
        case Hostility::kLoop:
          // Media-op livelock: the op-budget watchdog must bound this. If
          // the sandbox is broken this test hangs, which is the failure.
          while (pm_->Load<uint64_t>(0) != 0x686f7374696c6521ull) {
          }
          return common::OkStatus();
        case Hostility::kOob:
          (void)pm_->Load<uint64_t>(pm_->size() + (1u << 20));
          return common::Corruption("read past the device");
        case Hostility::kThrowAlways:
          break;
      }
    }
    return inner_.Mount();
  }

  common::Status Unmount() override { return inner_.Unmount(); }
  bool IsMounted() const override { return inner_.IsMounted(); }

  common::StatusOr<vfs::InodeNum> Lookup(vfs::InodeNum dir,
                                         const std::string& name) override {
    return inner_.Lookup(dir, name);
  }
  common::StatusOr<vfs::InodeNum> Create(vfs::InodeNum dir,
                                         const std::string& name) override {
    return inner_.Create(dir, name);
  }
  common::StatusOr<vfs::InodeNum> Mkdir(vfs::InodeNum dir,
                                        const std::string& name) override {
    return inner_.Mkdir(dir, name);
  }
  common::Status Unlink(vfs::InodeNum dir, const std::string& name) override {
    return inner_.Unlink(dir, name);
  }
  common::Status Rmdir(vfs::InodeNum dir, const std::string& name) override {
    return inner_.Rmdir(dir, name);
  }
  common::Status Link(vfs::InodeNum target, vfs::InodeNum dir,
                      const std::string& name) override {
    return inner_.Link(target, dir, name);
  }
  common::Status Rename(vfs::InodeNum src_dir, const std::string& src_name,
                        vfs::InodeNum dst_dir,
                        const std::string& dst_name) override {
    return inner_.Rename(src_dir, src_name, dst_dir, dst_name);
  }
  common::StatusOr<uint64_t> Read(vfs::InodeNum ino, uint64_t off,
                                  uint64_t len, uint8_t* out) override {
    return inner_.Read(ino, off, len, out);
  }
  common::StatusOr<uint64_t> Write(vfs::InodeNum ino, uint64_t off,
                                   const uint8_t* data, uint64_t len) override {
    return inner_.Write(ino, off, data, len);
  }
  common::Status Truncate(vfs::InodeNum ino, uint64_t new_size) override {
    return inner_.Truncate(ino, new_size);
  }
  common::Status Fallocate(vfs::InodeNum ino, uint32_t mode, uint64_t off,
                           uint64_t len) override {
    return inner_.Fallocate(ino, mode, off, len);
  }
  common::StatusOr<vfs::FsStat> GetAttr(vfs::InodeNum ino) override {
    return inner_.GetAttr(ino);
  }
  common::StatusOr<std::vector<vfs::DirEntry>> ReadDir(
      vfs::InodeNum dir) override {
    return inner_.ReadDir(dir);
  }
  common::Status Fsync(vfs::InodeNum ino) override { return inner_.Fsync(ino); }
  common::Status SyncAll() override { return inner_.SyncAll(); }

 private:
  pmem::Pm* pm_;
  Hostility mode_;
  bool formatted_ = false;
  novafs::NovaFs inner_;
};

FsConfig HostileConfig(Hostility mode) {
  FsConfig config;
  config.name = "hostile";
  config.device_size = kDev;
  config.make = [mode](pmem::Pm* pm) -> std::unique_ptr<vfs::FileSystem> {
    return std::make_unique<HostileFs>(pm, mode);
  };
  return config;
}

const workload::Workload& CreatWorkload() {
  static const std::vector<workload::Workload> all =
      trigger::AllTriggerWorkloads();
  const workload::Workload* w = trigger::FindWorkload(all, "creat");
  EXPECT_NE(w, nullptr);
  return *w;
}

std::vector<std::string> ReportStrings(const RunStats& stats) {
  std::vector<std::string> out;
  for (const BugReport& r : stats.reports) {
    out.push_back(r.ToString());
  }
  return out;
}

// Every file under `dir`, as entry-relative path -> contents.
std::map<std::string, std::string> SlurpDir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::map<std::string, std::string> out;
  if (!fs::exists(dir)) {
    return out;
  }
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) {
      continue;
    }
    std::ifstream in(e.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    out[fs::relative(e.path(), dir).string()] = buf.str();
  }
  return out;
}

std::string TempDir(const std::string& tag) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / ("sandbox_test_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

// ---- RunSandboxed primitives ----

TEST(SandboxTest, CompletedBodyPassesStatusThrough) {
  SandboxResult r = RunSandboxed(nullptr, SandboxOptions{},
                                 [] { return common::Corruption("inner"); });
  EXPECT_EQ(r.outcome, SandboxOutcome::kCompleted);
  EXPECT_FALSE(r.tripped());
  EXPECT_EQ(r.status.code(), common::ErrorCode::kCorruption);
}

TEST(SandboxTest, ExceptionBecomesResult) {
  SandboxResult r =
      RunSandboxed(nullptr, SandboxOptions{}, []() -> common::Status {
        throw std::runtime_error("boom");
      });
  EXPECT_EQ(r.outcome, SandboxOutcome::kException);
  EXPECT_TRUE(r.tripped());
  EXPECT_NE(r.status.ToString().find("boom"), std::string::npos);
}

TEST(SandboxTest, OpBudgetBoundsMediaLoops) {
  pmem::PmDevice dev(kDev);
  pmem::Pm pm(&dev);
  SandboxResult r =
      RunSandboxed(&pm, SandboxOptions{1000}, [&]() -> common::Status {
        while (true) {
          (void)pm.Load<uint64_t>(0);
        }
      });
  EXPECT_EQ(r.outcome, SandboxOutcome::kTimeout);
  EXPECT_EQ(r.status.code(), common::ErrorCode::kRecoveryTimeout);
  EXPECT_GT(r.ops_used, 1000u);
}

TEST(SandboxTest, ZeroBudgetDisablesWatchdogButCatches) {
  pmem::PmDevice dev(kDev);
  pmem::Pm pm(&dev);
  SandboxResult r =
      RunSandboxed(&pm, SandboxOptions{0}, [&]() -> common::Status {
        for (int i = 0; i < 5000; ++i) {
          (void)pm.Load<uint64_t>(0);
        }
        return common::OkStatus();
      });
  EXPECT_EQ(r.outcome, SandboxOutcome::kCompleted);
  EXPECT_TRUE(r.status.ok());
}

// ---- Fault primitives: poison + the fallible read path ----

TEST(FaultTest, PoisonedReadsFailCleanly) {
  pmem::PmDevice dev(kDev);
  pmem::Pm pm(&dev);
  pm.Memcpy(4096, "abcdefgh", 8);
  dev.Poison(4096, 8);

  // Infallible path: zero-fill, no device fault.
  EXPECT_EQ(pm.Load<uint64_t>(4096), 0u);
  EXPECT_FALSE(pm.faulted());

  // Fallible path: kIo, zero-fill, still no device fault.
  uint64_t value = 0xff;
  common::Status s = pm.TryReadInto(4096, &value, sizeof(value));
  EXPECT_EQ(s.code(), common::ErrorCode::kIo);
  EXPECT_EQ(value, 0u);
  EXPECT_FALSE(pm.faulted());

  // Adjacent bytes are unaffected, and clearing restores the range.
  EXPECT_TRUE(pm.TryReadInto(4096 + 64, &value, sizeof(value)).ok());
  dev.ClearPoison();
  EXPECT_TRUE(pm.TryReadInto(4096, &value, sizeof(value)).ok());
  EXPECT_EQ(std::memcmp(&value, "abcdefgh", 8), 0);
}

TEST(FaultTest, TryReadIntoOutOfBoundsRaisesStickyFault) {
  pmem::PmDevice dev(kDev);
  pmem::Pm pm(&dev);
  uint64_t value = 0xff;
  common::Status s = pm.TryReadInto(kDev + 64, &value, sizeof(value));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(pm.faulted());
}

TEST(FaultTest, PlanStateFaultsIsPureInItsInputs) {
  pmem::Trace trace;
  pmem::PmOp op;
  op.kind = pmem::PmOpKind::kNtStore;
  op.off = 512;
  op.data.assign(64, 0x5a);
  trace.push_back(op);

  const pmem::FaultPlan plan = pmem::FaultPlan::All(7);
  const std::vector<size_t> applied = {0};
  pmem::FaultDecisions a = pmem::PlanStateFaults(plan, 3, trace, applied, kDev);
  pmem::FaultDecisions b = pmem::PlanStateFaults(plan, 3, trace, applied, kDev);
  EXPECT_EQ(pmem::DescribeFaults(a), pmem::DescribeFaults(b));

  // Across many ordinals the plan must actually fire sometimes.
  bool any = false;
  for (uint64_t ordinal = 0; ordinal < 64; ++ordinal) {
    any = any ||
          pmem::PlanStateFaults(plan, ordinal, trace, applied, kDev).any();
  }
  EXPECT_TRUE(any);
}

// ---- Hostile recovery through the full harness ----

TEST(HostileRecoveryTest, ThrowingMountYieldsRecoveryFailureReport) {
  Harness harness(HostileConfig(Hostility::kThrow));
  auto stats = harness.TestWorkload(CreatWorkload());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_FALSE(stats->reports.empty());
  for (const BugReport& r : stats->reports) {
    EXPECT_EQ(r.kind, CheckKind::kRecoveryFailure) << r.ToString();
  }
}

TEST(HostileRecoveryTest, OobMountKeepsLegacyClassification) {
  // An out-of-bounds recovery read completes (sticky fault, zero reads), so
  // the sandbox-default-on path must preserve the pre-sandbox verdict.
  Harness harness(HostileConfig(Hostility::kOob));
  auto stats = harness.TestWorkload(CreatWorkload());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_FALSE(stats->reports.empty());
  bool oob = false;
  for (const BugReport& r : stats->reports) {
    oob = oob || r.kind == CheckKind::kOutOfBounds;
  }
  EXPECT_TRUE(oob);
}

TEST(HostileRecoveryTest, RecordStageContainsHostileMount) {
  // A file system hostile from the very first mount kills the record stage;
  // the sandbox converts that into an error Status, not a dead process.
  Harness harness(HostileConfig(Hostility::kThrowAlways));
  auto stats = harness.TestWorkload(CreatWorkload());
  EXPECT_FALSE(stats.ok());
}

TEST(HostileRecoveryTest, LoopingMountIsDeterministicAcrossJobs) {
  HarnessOptions options;
  options.sandbox_op_budget = 20'000;  // keep the livelocks cheap
  options.quarantine_max = 4;

  const std::string dir1 = TempDir("loop_jobs1");
  const std::string dir4 = TempDir("loop_jobs4");

  options.jobs = 1;
  options.quarantine_dir = dir1;
  Harness sequential(HostileConfig(Hostility::kLoop), options);
  auto seq = sequential.TestWorkload(CreatWorkload());
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  options.jobs = 4;
  options.quarantine_dir = dir4;
  Harness parallel(HostileConfig(Hostility::kLoop), options);
  auto par = parallel.TestWorkload(CreatWorkload());
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  ASSERT_FALSE(seq->reports.empty());
  for (const BugReport& r : seq->reports) {
    EXPECT_EQ(r.kind, CheckKind::kRecoveryFailure) << r.ToString();
    EXPECT_NE(r.detail.find("budget"), std::string::npos) << r.ToString();
  }
  EXPECT_EQ(ReportStrings(*seq), ReportStrings(*par));
  EXPECT_EQ(seq->crash_states, par->crash_states);

  // Quarantine contents are bit-identical for every jobs value.
  EXPECT_EQ(seq->quarantined.size(), 4u);
  EXPECT_EQ(seq->quarantined.size(), par->quarantined.size());
  auto files1 = SlurpDir(dir1);
  auto files4 = SlurpDir(dir4);
  EXPECT_FALSE(files1.empty());
  EXPECT_EQ(files1, files4);
}

TEST(HostileRecoveryTest, QuarantineBytesIdenticalAcrossImageModes) {
  // Pins the quarantine serialization: the artifacts (image.bin included)
  // must be byte-identical whether crash images are built as copy-on-write
  // overlays or deep copies, with and without media fault injection — the
  // on-disk entry is part of the `chipmunk repro` contract.
  for (bool inject : {false, true}) {
    std::map<std::string, std::string> reference;
    for (bool cow : {false, true}) {
      HarnessOptions options;
      options.sandbox_op_budget = 20'000;
      options.quarantine_max = 4;
      options.cow_images = cow;
      if (inject) {
        options.fault_plan = pmem::FaultPlan::All(11);
      }
      const std::string dir = TempDir(std::string("qpin_") +
                                      (inject ? "fault_" : "plain_") +
                                      (cow ? "cow" : "deep"));
      options.quarantine_dir = dir;
      Harness harness(HostileConfig(Hostility::kLoop), options);
      auto stats = harness.TestWorkload(CreatWorkload());
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      auto files = SlurpDir(dir);
      ASSERT_FALSE(files.empty());
      if (reference.empty()) {
        reference = std::move(files);
      } else {
        EXPECT_EQ(files, reference) << "inject=" << inject << " cow=" << cow;
      }
    }
  }
}

TEST(HostileRecoveryTest, QuarantinedStateReproducesOutsideTheHarness) {
  HarnessOptions options;
  options.sandbox_op_budget = 20'000;
  options.quarantine_max = 1;
  options.quarantine_dir = TempDir("repro");
  FsConfig config = HostileConfig(Hostility::kLoop);
  Harness harness(config, options);
  auto stats = harness.TestWorkload(CreatWorkload());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->quarantined.size(), 1u);

  auto entry = ReadQuarantineEntry(stats->quarantined[0]);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  EXPECT_TRUE(entry->is_state());
  EXPECT_EQ(entry->fs, "hostile");
  EXPECT_EQ(entry->workload.name, CreatWorkload().name);
  EXPECT_EQ(entry->report_kind, CheckKindName(CheckKind::kRecoveryFailure));
  ASSERT_EQ(entry->image.size(), kDev);
  EXPECT_FALSE(entry->trace_window.empty());

  // `chipmunk repro` in miniature: remount the quarantined image under the
  // sandbox and watch the same livelock trip the watchdog again.
  pmem::PmDevice dev(entry->image.size());
  pmem::Pm pm(&dev);
  pm.RestoreRaw(0, entry->image.data(), entry->image.size());
  std::unique_ptr<vfs::FileSystem> fs = config.make(&pm);
  SandboxResult guarded =
      RunSandboxed(&pm, SandboxOptions{entry->sandbox_budget},
                   [&] { return fs->Mount(); });
  EXPECT_EQ(guarded.outcome, SandboxOutcome::kTimeout);
}

// ---- Fault injection through the full harness ----

TEST(FaultInjectionTest, NovafsSurvivesFaultsIdenticallyAcrossJobs) {
  auto config = MakeFsConfig("novafs", {}, kDev);
  ASSERT_TRUE(config.ok());
  HarnessOptions options;
  options.fault_plan = pmem::FaultPlan::All(11);

  options.jobs = 1;
  Harness sequential(*config, options);
  auto seq = sequential.TestWorkload(CreatWorkload());
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  options.jobs = 4;
  Harness parallel(*config, options);
  auto par = parallel.TestWorkload(CreatWorkload());
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  EXPECT_EQ(seq->crash_states, par->crash_states);
  EXPECT_EQ(ReportStrings(*seq), ReportStrings(*par));
  // The verdict under faults is robustness-only: novafs must fail cleanly or
  // recover, so a fixed build produces no reports at all.
  EXPECT_EQ(ReportStrings(*seq), std::vector<std::string>{});
}

TEST(FaultInjectionTest, SyntheticBug26TripsTheWatchdog) {
  auto config = MakeBugConfig(vfs::BugId::kNova26RecoveryLoop, kDev);
  ASSERT_TRUE(config.ok());
  HarnessOptions options;
  options.sandbox_op_budget = 20'000;
  Harness harness(*config, options);
  auto stats = harness.TestWorkload(CreatWorkload());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_FALSE(stats->reports.empty());
  for (const BugReport& r : stats->reports) {
    EXPECT_EQ(r.kind, CheckKind::kRecoveryFailure) << r.ToString();
  }
}

// ---- Fuzzer graceful degradation ----

fuzz::FuzzResult RunHostileFuzz(size_t fuzz_jobs, const std::string& qdir) {
  fuzz::FuzzOptions options;
  options.seed = 5;
  options.iterations = 3;
  options.jobs = fuzz_jobs;
  options.harness.quarantine_dir = qdir;
  fuzz::FuzzEngine engine(HostileConfig(Hostility::kThrowAlways), options);
  return engine.Run();
}

TEST(FuzzDegradationTest, ReplayDeathIsRetriedQuarantinedAndCounted) {
  const std::string dir1 = TempDir("fuzz_jobs1");
  const std::string dir2 = TempDir("fuzz_jobs2");
  fuzz::FuzzResult one = RunHostileFuzz(1, dir1);
  fuzz::FuzzResult two = RunHostileFuzz(2, dir2);

  // Every workload dies in the record stage, is retried once at jobs=1, dies
  // again, and is quarantined — and the pipeline still executes all of them.
  EXPECT_EQ(one.executed, 3u);
  EXPECT_EQ(one.replay_retries, 3u);
  EXPECT_EQ(one.replay_failures, 6u);
  EXPECT_EQ(one.workloads_quarantined, 3u);
  ASSERT_FALSE(one.unique_reports.empty());
  for (const BugReport& r : one.unique_reports) {
    EXPECT_EQ(r.kind, CheckKind::kRecoveryFailure) << r.ToString();
  }

  // Bit-identical across --fuzz-jobs, quarantine contents included.
  EXPECT_EQ(one.executed, two.executed);
  EXPECT_EQ(one.replay_failures, two.replay_failures);
  EXPECT_EQ(one.replay_retries, two.replay_retries);
  EXPECT_EQ(one.workloads_quarantined, two.workloads_quarantined);
  EXPECT_EQ(one.states_quarantined, two.states_quarantined);
  ASSERT_EQ(one.unique_reports.size(), two.unique_reports.size());
  for (size_t i = 0; i < one.unique_reports.size(); ++i) {
    EXPECT_EQ(one.unique_reports[i].ToString(),
              two.unique_reports[i].ToString());
  }
  ASSERT_EQ(one.timeline.size(), two.timeline.size());
  for (size_t i = 0; i < one.timeline.size(); ++i) {
    EXPECT_EQ(one.timeline[i].signature, two.timeline[i].signature);
    EXPECT_EQ(one.timeline[i].ordinal, two.timeline[i].ordinal);
  }
  auto files1 = SlurpDir(dir1);
  auto files2 = SlurpDir(dir2);
  EXPECT_FALSE(files1.empty());
  EXPECT_EQ(files1, files2);

  // The quarantined workload round-trips.
  ASSERT_TRUE(std::filesystem::exists(dir1));
  bool found = false;
  for (const auto& e : std::filesystem::directory_iterator(dir1)) {
    auto entry = ReadQuarantineEntry(e.path().string());
    ASSERT_TRUE(entry.ok()) << entry.status().ToString();
    EXPECT_EQ(entry->kind, "workload");
    EXPECT_FALSE(entry->workload.ops.empty());
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FuzzDegradationTest, HealthyFuzzHasNoFailures) {
  fuzz::FuzzOptions options;
  options.seed = 5;
  options.iterations = 2;
  auto config = MakeFsConfig("novafs", {}, kDev);
  ASSERT_TRUE(config.ok());
  fuzz::FuzzEngine engine(*config, options);
  fuzz::FuzzResult result = engine.Run();
  EXPECT_EQ(result.executed, 2u);
  EXPECT_EQ(result.replay_failures, 0u);
  EXPECT_EQ(result.replay_retries, 0u);
  EXPECT_EQ(result.workloads_quarantined, 0u);
  EXPECT_EQ(result.states_quarantined, 0u);
}

}  // namespace
}  // namespace chipmunk
