// Unit tests for the oracle and the consistency checker: FileVersion
// comparison, snapshot capture, the torn-write allowance, and the checker's
// verdicts on hand-constructed crash states.
#include <gtest/gtest.h>

#include "src/core/checker.h"
#include "src/core/fs_registry.h"
#include "src/core/oracle.h"
#include "src/core/runner.h"
#include "src/fs/reference/reference_fs.h"
#include "src/pmem/pm_device.h"
#include "src/workload/triggers.h"

namespace {

using chipmunk::CaptureSnapshot;
using chipmunk::CheckContext;
using chipmunk::Checker;
using chipmunk::FileVersion;
using chipmunk::IntermediateWriteOk;
using chipmunk::OracleTrace;
using workload::Op;
using workload::OpKind;
using workload::Workload;

FileVersion File(uint64_t size, uint32_t nlink, std::vector<uint8_t> content) {
  FileVersion v;
  v.exists = true;
  v.type = vfs::FileType::kRegular;
  v.size = size;
  v.nlink = nlink;
  v.content = std::move(content);
  return v;
}

TEST(FileVersionTest, EqualityIsStructural) {
  FileVersion a = File(3, 1, {1, 2, 3});
  FileVersion b = File(3, 1, {1, 2, 3});
  EXPECT_EQ(a, b);
  b.content[1] = 9;
  EXPECT_FALSE(a == b);
  FileVersion absent;
  EXPECT_FALSE(a == absent);
}

TEST(FileVersionTest, ToStringDistinguishesStates) {
  FileVersion absent;
  EXPECT_EQ(absent.ToString(), "<absent>");
  FileVersion bad;
  bad.unreadable = true;
  EXPECT_EQ(bad.ToString(), "<unreadable>");
  EXPECT_NE(File(1, 1, {7}).ToString(), File(1, 1, {8}).ToString());
}

TEST(CaptureSnapshotTest, RecordsFilesDirsAndAbsences) {
  reffs::ReferenceFs fs;
  ASSERT_TRUE(fs.Mkfs().ok());
  ASSERT_TRUE(fs.Mount().ok());
  vfs::Vfs v(&fs);
  ASSERT_TRUE(v.Mkdir("/d").ok());
  auto fd = v.Open("/d/f", vfs::OpenFlags{.create = true});
  uint8_t b = 'x';
  ASSERT_TRUE(v.Write(*fd, &b, 1).ok());

  auto snap = CaptureSnapshot(v, {"/", "/d", "/d/f", "/missing"});
  EXPECT_TRUE(snap["/"].exists);
  EXPECT_EQ(snap["/"].type, vfs::FileType::kDirectory);
  EXPECT_EQ(snap["/"].entries, std::vector<std::string>{"d"});
  EXPECT_EQ(snap["/d/f"].size, 1u);
  EXPECT_EQ(snap["/d/f"].content[0], 'x');
  EXPECT_FALSE(snap["/missing"].exists);
  EXPECT_FALSE(snap["/missing"].unreadable);
}

TEST(IntermediateWriteOkTest, AcceptsTornMixOfOldNewZero) {
  Op op;
  op.kind = OpKind::kPwrite;
  op.path = "/f";
  FileVersion pre = File(4, 1, {'o', 'o', 'o', 'o'});
  FileVersion post = File(4, 1, {'n', 'n', 'n', 'n'});
  EXPECT_TRUE(IntermediateWriteOk(File(4, 1, {'o', 'n', 0, 'o'}), pre, post, op));
  EXPECT_TRUE(IntermediateWriteOk(pre, pre, post, op));
  EXPECT_TRUE(IntermediateWriteOk(post, pre, post, op));
  // A byte that is neither old, new, nor zero is corruption.
  EXPECT_FALSE(
      IntermediateWriteOk(File(4, 1, {'o', 'Z', 'o', 'o'}), pre, post, op));
  // Sizes must be the old or the new size.
  EXPECT_FALSE(IntermediateWriteOk(File(2, 1, {'o', 'o'}), pre, post, op));
  // Link count must not drift.
  EXPECT_FALSE(IntermediateWriteOk(File(4, 2, {'o', 'o', 'o', 'o'}), pre, post, op));
  // Extending write: the size may be pre or post, gaps read zero or new.
  FileVersion post_ext = File(6, 1, {'o', 'o', 'o', 'o', 'n', 'n'});
  EXPECT_TRUE(IntermediateWriteOk(File(6, 1, {'o', 'o', 'o', 'o', 0, 'n'}),
                                  pre, post_ext, op));
}

// Builds a real oracle + crash image for a simple workload so the checker
// can be exercised directly.
struct CheckerFixtureResult {
  chipmunk::FsConfig config;
  OracleTrace oracle;
  Workload w;
  std::vector<uint8_t> final_image;
  std::vector<uint8_t> pre_image;  // before the last op
};

CheckerFixtureResult BuildFixture() {
  CheckerFixtureResult out;
  out.config = *chipmunk::MakeFsConfig("novafs", {}, 1024 * 1024);
  out.w.name = "checker-fixture";
  out.w.ops = {trigger::MkOp(OpKind::kCreat, "/foo"),
               trigger::MkOp(OpKind::kRename, "/foo", "/bar")};
  out.oracle = *chipmunk::BuildOracle(out.config, out.w);

  pmem::PmDevice dev(out.config.device_size);
  pmem::Pm pm(&dev);
  auto fs = out.config.make(&pm);
  (void)fs->Mkfs();
  (void)fs->Mount();
  vfs::Vfs v(fs.get());
  chipmunk::WorkloadRunner runner(&out.w, &v, nullptr);
  runner.Step(0);
  out.pre_image = dev.Snapshot();
  runner.Step(1);
  out.final_image = dev.Snapshot();
  return out;
}

TEST(CheckerTest, FinalStateMatchesPostOracle) {
  CheckerFixtureResult fx = BuildFixture();
  pmem::PmDevice dev(std::move(fx.final_image));
  pmem::Pm pm(&dev);
  Checker checker(&fx.config);
  CheckContext ctx;
  ctx.w = &fx.w;
  ctx.oracle = &fx.oracle;
  ctx.guarantees = vfs::CrashGuarantees{true, true, true};
  ctx.syscall_index = 1;
  ctx.mid_syscall = false;
  EXPECT_FALSE(checker.CheckCrashState(pm, ctx).has_value());
}

TEST(CheckerTest, PreStateAcceptedMidSyscallButNotPost) {
  CheckerFixtureResult fx = BuildFixture();
  pmem::PmDevice dev(std::move(fx.pre_image));
  pmem::Pm pm(&dev);
  Checker checker(&fx.config);
  CheckContext ctx;
  ctx.w = &fx.w;
  ctx.oracle = &fx.oracle;
  ctx.guarantees = vfs::CrashGuarantees{true, true, true};
  ctx.syscall_index = 1;
  ctx.mid_syscall = true;  // during the rename: pre state is legal
  EXPECT_FALSE(checker.CheckCrashState(pm, ctx).has_value());
  ctx.mid_syscall = false;  // after the rename returned it is not
  auto report = checker.CheckCrashState(pm, ctx);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, chipmunk::CheckKind::kSynchrony);
}

TEST(CheckerTest, GarbageImageIsMountFailure) {
  CheckerFixtureResult fx = BuildFixture();
  std::vector<uint8_t> garbage(fx.config.device_size, 0xCD);
  pmem::PmDevice dev(std::move(garbage));
  pmem::Pm pm(&dev);
  Checker checker(&fx.config);
  CheckContext ctx;
  ctx.w = &fx.w;
  ctx.oracle = &fx.oracle;
  ctx.syscall_index = 1;
  ctx.mid_syscall = false;
  auto report = checker.CheckCrashState(pm, ctx);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, chipmunk::CheckKind::kMountFailure);
}

TEST(CheckerTest, RollbackLeavesImageUntouched) {
  CheckerFixtureResult fx = BuildFixture();
  std::vector<uint8_t> image = fx.final_image;
  pmem::PmDevice dev(std::move(fx.final_image));
  pmem::Pm pm(&dev);
  Checker checker(&fx.config);
  CheckContext ctx;
  ctx.w = &fx.w;
  ctx.oracle = &fx.oracle;
  ctx.guarantees = vfs::CrashGuarantees{true, true, true};
  ctx.syscall_index = 1;
  ctx.mid_syscall = false;
  (void)checker.CheckCrashState(pm, ctx);
  // Mount-time recovery and the usability probes mutated the image; the
  // undo recorder must have restored every byte.
  EXPECT_EQ(dev.Snapshot(), image);
}

TEST(ReportTest, SignatureIgnoresPathsButKeepsShape) {
  chipmunk::BugReport a;
  a.fs = "novafs";
  a.kind = chipmunk::CheckKind::kAtomicity;
  a.syscall = "rename /foo -> /bar";
  chipmunk::BugReport b = a;
  b.syscall = "rename /x -> /y";
  EXPECT_EQ(a.Signature(), b.Signature());
  b.kind = chipmunk::CheckKind::kSynchrony;
  EXPECT_NE(a.Signature(), b.Signature());
}

TEST(OracleTest, TracksPrePostPerSyscall) {
  auto config = chipmunk::MakeFsConfig("pmfs", {}, 1024 * 1024);
  Workload w;
  w.ops = {trigger::MkOp(OpKind::kCreat, "/foo"),
           trigger::MkOp(OpKind::kUnlink, "/foo")};
  auto oracle = chipmunk::BuildOracle(*config, w);
  ASSERT_TRUE(oracle.ok());
  EXPECT_FALSE(oracle->pre[0].at("/foo").exists);
  EXPECT_TRUE(oracle->post[0].at("/foo").exists);
  EXPECT_TRUE(oracle->pre[1].at("/foo").exists);
  EXPECT_FALSE(oracle->post[1].at("/foo").exists);
  EXPECT_TRUE(oracle->statuses[0].ok());
  EXPECT_TRUE(oracle->statuses[1].ok());
}

}  // namespace
