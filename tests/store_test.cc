// Campaign store tests: framing + corruption recovery at the store layer,
// and the end-to-end resume/warm/shard contracts at the engine layer. The
// central invariant under test is the ISSUE acceptance line: an interrupted
// campaign resumed with --resume produces a FuzzResult bit-identical (modulo
// wall/CPU time) to the uninterrupted run, at every jobs / fuzz-jobs value.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/fs_registry.h"
#include "src/fuzz/ace_engine.h"
#include "src/fuzz/fuzz_engine.h"
#include "src/store/campaign_store.h"
#include "src/vfs/bug.h"
#include "src/workload/ace.h"

namespace {

namespace fs = std::filesystem;

using chipmunk::MakeFsConfig;
using fuzz::AceEngine;
using fuzz::FuzzEngine;
using fuzz::FuzzOptions;
using fuzz::FuzzResult;
using store::CampaignMeta;
using store::CampaignStore;
using store::CommitRecord;
using store::LoadedCampaign;

constexpr size_t kDev = 1024 * 1024;

// A fresh per-test directory under the gtest temp root.
std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("chipmunk-store-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// The buggy-novafs config the CLI smoke flow uses: bugs 1 and 3 surface
// mount failures, so runs produce crash states, reports, and timeline
// entries — nothing under test is vacuous.
chipmunk::FsConfig BuggyConfig() {
  vfs::BugSet bugs;
  bugs.Enable(vfs::BugId::kNova1LogPageInitOrder);
  bugs.Enable(vfs::BugId::kNova3TailOverrun);
  auto config = MakeFsConfig("novafs", bugs, kDev);
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  return *config;
}

FuzzOptions CampaignOptions(const std::string& dir, size_t iterations) {
  FuzzOptions o;
  o.seed = 7;
  o.iterations = iterations;
  o.campaign_dir = dir;
  o.checkpoint_interval = 5;  // several compactions per run
  return o;
}

FuzzResult RunCampaign(const chipmunk::FsConfig& config,
                       const FuzzOptions& options) {
  FuzzEngine engine(config, options);
  common::Status opened = engine.OpenCampaign();
  EXPECT_TRUE(opened.ok()) << opened.ToString();
  return engine.Run();
}

// The ACE sweep shape the ace-campaign tests use: seq-1, PM mode — 56
// workloads, a few of which hit the enabled nova bugs.
workload::AceOptions TestAceOptions() {
  workload::AceOptions ace;
  ace.seq = 1;
  return ace;
}

FuzzResult RunAceCampaign(const chipmunk::FsConfig& config,
                          const FuzzOptions& options,
                          const workload::AceOptions& ace) {
  AceEngine engine(config, options, ace);
  common::Status opened = engine.OpenCampaign();
  EXPECT_TRUE(opened.ok()) << opened.ToString();
  return engine.Run();
}

// Everything deterministic in a FuzzResult. `warm` relaxes the two fields a
// warm rerun is allowed to change versus its cold ancestor: states_deduped
// (the whole point of the rerun) and coverage_points (skipped states
// contribute no recovery coverage). Reports, timeline, corpus, and the
// robustness counters must still match exactly.
void ExpectSameResult(const FuzzResult& a, const FuzzResult& b,
                      bool warm = false) {
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  EXPECT_EQ(a.crash_states, b.crash_states);
  if (!warm) {
    EXPECT_EQ(a.coverage_points, b.coverage_points);
    EXPECT_EQ(a.states_deduped, b.states_deduped);
  }
  EXPECT_EQ(a.replay_failures, b.replay_failures);
  EXPECT_EQ(a.replay_retries, b.replay_retries);
  EXPECT_EQ(a.workloads_quarantined, b.workloads_quarantined);
  EXPECT_EQ(a.lint_findings, b.lint_findings);
  EXPECT_EQ(a.lint_rule_counts, b.lint_rule_counts);
  EXPECT_EQ(a.hb_findings, b.hb_findings);
  EXPECT_EQ(a.hb_rule_counts, b.hb_rule_counts);
  // Per-signature hit counts are exact even under `warm`: reports come only
  // from non-clean states, which never enter the clean-state index, so a
  // warm rerun re-replays and re-counts every one of them.
  EXPECT_EQ(a.report_hits, b.report_hits);
  ASSERT_EQ(a.unique_reports.size(), b.unique_reports.size());
  for (size_t i = 0; i < a.unique_reports.size(); ++i) {
    EXPECT_EQ(a.unique_reports[i].ToString(), b.unique_reports[i].ToString());
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].ordinal, b.timeline[i].ordinal);
    EXPECT_EQ(a.timeline[i].signature, b.timeline[i].signature);
  }
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].members.size(), b.clusters[i].members.size());
    EXPECT_EQ(a.clusters[i].representative.Signature(),
              b.clusters[i].representative.Signature());
  }
}

CommitRecord SampleRecord() {
  CommitRecord rec;
  rec.ordinal = 41;
  rec.workload_name = "fuzz-41";
  rec.workload_text = "create /a\nwrite /a 0 4096\n";
  rec.ran = true;
  rec.ok = false;
  rec.retried = true;
  rec.admitted = true;
  rec.error = "replay died";
  rec.first_error = "sandbox budget exceeded";
  rec.crash_states = 9;
  rec.states_deduped = 2;
  rec.states_pruned = 3;
  rec.states_quarantined = 1;
  rec.lint_findings = 2;
  rec.lint_rules = {"missing-flush", "missing-fence"};
  rec.hb_findings = 2;
  rec.hb_rules = {"cross-syscall-durability-race",
                  "ordering-invariant-violation"};
  rec.cov_slots = {0, 17, 16383};
  rec.clean_hashes = {0xdeadbeefULL, 0x1234};
  rec.wall_seconds = 1.5;
  rec.cpu_seconds = 2.25;
  chipmunk::BugReport r;
  r.fs = "novafs";
  r.workload_name = "fuzz-41";
  r.kind = chipmunk::CheckKind::kMountFailure;
  r.detail = "mount failed at fence 3";
  r.syscall_index = 2;
  r.syscall = "write /a 0 4096";
  r.mid_syscall = true;
  r.crash_point = 3;
  r.subset = {0, 2};
  rec.reports.push_back(r);
  return rec;
}

// ---------------------------------------------------------------------------
// Store layer: meta, framing, corruption
// ---------------------------------------------------------------------------

TEST(CampaignMetaTest, RoundTripAndCompatibility) {
  CampaignMeta meta;
  meta.fs = "novafs";
  meta.bugs = "1,3";
  meta.device_size = kDev;
  meta.seed = 7;
  meta.max_ops = 10;
  meta.iterations = 40;
  meta.corpus_max = 128;
  meta.lookahead = 16;
  meta.shard_index = 1;
  meta.shard_count = 3;
  meta.lint = true;
  meta.inject_faults = false;
  meta.fault_seed = 0;

  auto parsed = store::ParseMeta(store::SerializeMeta(meta));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string why;
  EXPECT_TRUE(meta.CompatibleWith(*parsed, &why)) << why;
  EXPECT_EQ(parsed->shard_index, 1u);
  EXPECT_EQ(parsed->shard_count, 3u);

  // iterations is informational: a resume may extend the campaign.
  CampaignMeta longer = meta;
  longer.iterations = 500;
  EXPECT_TRUE(meta.CompatibleWith(longer, &why)) << why;

  CampaignMeta other_seed = meta;
  other_seed.seed = 8;
  EXPECT_FALSE(meta.CompatibleWith(other_seed, &why));
  EXPECT_EQ(why, "seed");

  CampaignMeta merged = meta;
  merged.merged = true;
  EXPECT_FALSE(meta.CompatibleWith(merged, &why));
  EXPECT_EQ(why, "merged");

  // Representative pruning is part of the campaign identity: a pruned
  // campaign inserts fewer clean hashes into the equivalence index, so it
  // must not resume (or share an index with) an exhaustive one.
  CampaignMeta pruned = meta;
  pruned.representative = true;
  EXPECT_FALSE(meta.CompatibleWith(pruned, &why));
  EXPECT_EQ(why, "representative");
  auto pruned_parsed = store::ParseMeta(store::SerializeMeta(pruned));
  ASSERT_TRUE(pruned_parsed.ok()) << pruned_parsed.status().ToString();
  EXPECT_TRUE(pruned_parsed->representative);
  EXPECT_TRUE(pruned.CompatibleWith(*pruned_parsed, &why)) << why;

  // Targeting reorders visitation within stop-at-first-report cutoffs, so a
  // targeted campaign and an untargeted one are different campaigns; the
  // same goes for the invariant set steering it.
  CampaignMeta targeted = meta;
  targeted.targeted = true;
  EXPECT_FALSE(meta.CompatibleWith(targeted, &why));
  EXPECT_EQ(why, "targeted");
  auto targeted_parsed = store::ParseMeta(store::SerializeMeta(targeted));
  ASSERT_TRUE(targeted_parsed.ok()) << targeted_parsed.status().ToString();
  EXPECT_TRUE(targeted_parsed->targeted);
  EXPECT_TRUE(targeted.CompatibleWith(*targeted_parsed, &why)) << why;

  CampaignMeta other_invariants = meta;
  other_invariants.invariants = "novafs.inv";
  EXPECT_FALSE(meta.CompatibleWith(other_invariants, &why));
  EXPECT_EQ(why, "invariants");
  auto inv_parsed = store::ParseMeta(store::SerializeMeta(other_invariants));
  ASSERT_TRUE(inv_parsed.ok()) << inv_parsed.status().ToString();
  EXPECT_EQ(inv_parsed->invariants, "novafs.inv");
  EXPECT_TRUE(other_invariants.CompatibleWith(*inv_parsed, &why)) << why;

  // The workload generator is part of the campaign identity: an ace store
  // must never silently resume (or share an index with) a fuzz store, and
  // the sweep shape must match exactly.
  CampaignMeta ace = meta;
  ace.generator = "ace";
  ace.ace_seq = 2;
  ace.ace_metadata = true;
  EXPECT_FALSE(meta.CompatibleWith(ace, &why));
  EXPECT_EQ(why, "generator");
  auto ace_parsed = store::ParseMeta(store::SerializeMeta(ace));
  ASSERT_TRUE(ace_parsed.ok()) << ace_parsed.status().ToString();
  EXPECT_EQ(ace_parsed->generator, "ace");
  EXPECT_EQ(ace_parsed->ace_seq, 2u);
  EXPECT_TRUE(ace_parsed->ace_metadata);
  EXPECT_FALSE(ace_parsed->ace_weak);
  EXPECT_TRUE(ace.CompatibleWith(*ace_parsed, &why)) << why;
  CampaignMeta other_seq = ace;
  other_seq.ace_seq = 3;
  EXPECT_FALSE(ace.CompatibleWith(other_seq, &why));
  EXPECT_EQ(why, "ace_seq");
  CampaignMeta weak = ace;
  weak.ace_weak = true;
  EXPECT_FALSE(ace.CompatibleWith(weak, &why));
  EXPECT_EQ(why, "ace_weak");

  // The lease range is part of the identity: a lease store holds commits for
  // exactly its own slice of the enumeration, so a store for a different
  // range can never resume it.
  CampaignMeta leased = meta;
  leased.range_begin = 32;
  leased.range_count = 8;
  EXPECT_FALSE(meta.CompatibleWith(leased, &why));
  EXPECT_EQ(why, "range_begin");
  auto lease_parsed = store::ParseMeta(store::SerializeMeta(leased));
  ASSERT_TRUE(lease_parsed.ok()) << lease_parsed.status().ToString();
  EXPECT_EQ(lease_parsed->range_begin, 32u);
  EXPECT_EQ(lease_parsed->range_count, 8u);
  EXPECT_TRUE(leased.CompatibleWith(*lease_parsed, &why)) << why;
  CampaignMeta other_count = leased;
  other_count.range_count = 16;
  EXPECT_FALSE(leased.CompatibleWith(other_count, &why));
  EXPECT_EQ(why, "range_count");
}

// The live-writer flag: a read-only Load taken while another store object
// holds the writer lock must say so (stats and merge print a "live" note and
// suppress torn-tail warnings), and the flag must clear once the writer is
// gone.
TEST(CampaignStoreTest, LoadObservesLiveWriter) {
  const std::string dir = FreshDir("live-writer");
  CampaignMeta meta;
  meta.fs = "novafs";
  meta.bugs = "1,3";
  meta.device_size = kDev;
  meta.seed = 7;
  auto writer = CampaignStore::Create(dir, meta);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  auto while_open = CampaignStore::Load(dir);
  ASSERT_TRUE(while_open.ok()) << while_open.status().ToString();
  EXPECT_TRUE(while_open->live);

  writer->reset();  // releases the writer lock
  auto after_close = CampaignStore::Load(dir);
  ASSERT_TRUE(after_close.ok()) << after_close.status().ToString();
  EXPECT_FALSE(after_close->live);
}

// Stores written before the generator field existed carry no generator key;
// they must parse as what they were: fuzz campaigns.
TEST(CampaignMetaTest, AbsentGeneratorKeyMeansFuzz) {
  CampaignMeta meta;
  meta.fs = "novafs";
  meta.seed = 7;
  std::string text = store::SerializeMeta(meta);
  std::string pruned;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("generator:", 0) == 0 || line.rfind("ace_", 0) == 0) {
      continue;
    }
    pruned += line + "\n";
  }
  ASSERT_NE(pruned, text) << "serialized meta lacks the generator fields";
  auto parsed = store::ParseMeta(pruned);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->generator, "fuzz");
  EXPECT_EQ(parsed->ace_seq, 0u);
  EXPECT_FALSE(parsed->ace_metadata);
  EXPECT_FALSE(parsed->ace_weak);
  std::string why;
  EXPECT_TRUE(meta.CompatibleWith(*parsed, &why)) << why;
}

TEST(CommitRecordTest, PayloadRoundTrip) {
  const CommitRecord rec = SampleRecord();
  auto back = store::DecodeCommitPayload(store::EncodeCommitPayload(rec));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ordinal, rec.ordinal);
  EXPECT_EQ(back->workload_name, rec.workload_name);
  EXPECT_EQ(back->workload_text, rec.workload_text);
  EXPECT_EQ(back->ran, rec.ran);
  EXPECT_EQ(back->ok, rec.ok);
  EXPECT_EQ(back->retried, rec.retried);
  EXPECT_EQ(back->admitted, rec.admitted);
  EXPECT_EQ(back->error, rec.error);
  EXPECT_EQ(back->first_error, rec.first_error);
  EXPECT_EQ(back->crash_states, rec.crash_states);
  EXPECT_EQ(back->states_deduped, rec.states_deduped);
  EXPECT_EQ(back->states_pruned, rec.states_pruned);
  EXPECT_EQ(back->states_quarantined, rec.states_quarantined);
  EXPECT_EQ(back->lint_findings, rec.lint_findings);
  EXPECT_EQ(back->lint_rules, rec.lint_rules);
  EXPECT_EQ(back->hb_findings, rec.hb_findings);
  EXPECT_EQ(back->hb_rules, rec.hb_rules);
  EXPECT_EQ(back->cov_slots, rec.cov_slots);
  EXPECT_EQ(back->clean_hashes, rec.clean_hashes);
  EXPECT_EQ(back->wall_seconds, rec.wall_seconds);
  EXPECT_EQ(back->cpu_seconds, rec.cpu_seconds);
  ASSERT_EQ(back->reports.size(), 1u);
  EXPECT_EQ(back->reports[0].ToString(), rec.reports[0].ToString());
  EXPECT_EQ(back->reports[0].subset, rec.reports[0].subset);
}

TEST(CommitRecordTest, TruncatedPayloadRejected) {
  const std::string payload = store::EncodeCommitPayload(SampleRecord());
  for (size_t cut : {size_t{0}, size_t{1}, payload.size() / 2,
                     payload.size() - 1}) {
    auto r = store::DecodeCommitPayload(payload.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "payload cut to " << cut << " bytes was accepted";
  }
}

// Appends a handful of records, then damages the log tail in place and
// checks that Load() cuts back to the last valid record — never silently
// ingests garbage.
class LogCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = FreshDir(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    CampaignMeta meta;
    meta.fs = "novafs";
    meta.seed = 7;
    auto st = CampaignStore::Create(dir_, meta);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    for (uint64_t i = 0; i < 4; ++i) {
      CommitRecord rec = SampleRecord();
      rec.ordinal = i;
      ASSERT_TRUE((*st)->AppendCommit(rec).ok());
    }
    log_path_ = (fs::path(dir_) / "log.bin").string();
    log_size_ = fs::file_size(log_path_);
  }

  void DamageLog(int64_t at, char value, bool truncate_after) {
    std::fstream f(log_path_,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(at < 0 ? static_cast<int64_t>(log_size_) + at : at);
    f.put(value);
    f.close();
    if (truncate_after) {
      fs::resize_file(log_path_, log_size_ - 3);  // also tear the tail
    }
  }

  std::string dir_;
  std::string log_path_;
  uint64_t log_size_ = 0;
};

TEST_F(LogCorruptionTest, TornTailTruncatedToValidPrefix) {
  fs::resize_file(log_path_, log_size_ - 5);
  auto loaded = CampaignStore::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->log_truncated);
  ASSERT_EQ(loaded->log.size(), 3u);  // last record torn, first three intact
  EXPECT_EQ(loaded->log.back().ordinal, 2u);
}

TEST_F(LogCorruptionTest, FlippedByteCutsFromDamagedRecord) {
  // Flip one byte inside the last record's payload: the CRC catches it and
  // the log is cut back to the third record.
  DamageLog(-10, '\xff', /*truncate_after=*/false);
  auto loaded = CampaignStore::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->log_truncated);
  ASSERT_EQ(loaded->log.size(), 3u);
  EXPECT_EQ(loaded->log.back().ordinal, 2u);
}

TEST_F(LogCorruptionTest, ResumeTruncatesDamageOnDisk) {
  DamageLog(-10, '\xff', /*truncate_after=*/true);
  LoadedCampaign loaded;
  auto st = CampaignStore::OpenForResume(dir_, &loaded);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_TRUE(loaded.log_truncated);
  ASSERT_EQ(loaded.log.size(), 3u);
  // The damaged tail is gone from disk, and the store appends after the
  // valid prefix: a fresh record lands as the fourth entry.
  CommitRecord rec = SampleRecord();
  rec.ordinal = 3;
  ASSERT_TRUE((*st)->AppendCommit(rec).ok());
  st->reset();  // close the append handle before reloading
  auto reloaded = CampaignStore::Load(dir_);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_FALSE(reloaded->log_truncated);
  ASSERT_EQ(reloaded->log.size(), 4u);
  EXPECT_EQ(reloaded->log.back().ordinal, 3u);
}

TEST(CheckpointCorruptionTest, FlippedCheckpointByteDetected) {
  const std::string dir = FreshDir("ckpt-flip");
  FuzzOptions options = CampaignOptions(dir, 8);
  RunCampaign(BuggyConfig(), options);
  const std::string ckpt = (fs::path(dir) / "checkpoint.bin").string();
  const uint64_t size = fs::file_size(ckpt);
  std::fstream f(ckpt, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(size / 2);
  const char orig = static_cast<char>(f.get());
  f.seekp(size / 2);
  f.put(orig ^ 0x20);
  f.close();
  auto loaded = CampaignStore::Load(dir);
  EXPECT_FALSE(loaded.ok()) << "corrupt checkpoint was accepted";
}

TEST(StateIndexTest, VersionCappedVisibility) {
  store::StateIndex index;
  index.Insert(0xabc, 5);
  EXPECT_FALSE(index.ContainsAt(0xabc, 4));
  EXPECT_TRUE(index.ContainsAt(0xabc, 5));
  EXPECT_TRUE(index.ContainsAt(0xabc, 100));
  index.Insert(0xabc, 3);  // min version wins
  EXPECT_TRUE(index.ContainsAt(0xabc, 3));
  index.Insert(0xabc, 9);  // later insert never raises the version
  EXPECT_TRUE(index.ContainsAt(0xabc, 3));
  // Version 0 = inherited from a prior run: visible to every snapshot.
  index.Insert(0xdef, 0);
  EXPECT_TRUE(index.ContainsAt(0xdef, 0));
  EXPECT_EQ(index.size(), 2u);
  store::StateIndexSnapshot snap(&index, 4);
  EXPECT_TRUE(snap.Contains(0xabc));  // version 3 <= cap 4
  EXPECT_TRUE(snap.Contains(0xdef));
}

// ---------------------------------------------------------------------------
// Engine layer: resume determinism, warm dedup, shards
// ---------------------------------------------------------------------------

// The acceptance matrix: a campaign interrupted after 12 of 40 commits and
// resumed must match the uninterrupted 40-commit run exactly — across
// fuzz-pipeline widths (fuzz-jobs) and replay widths (jobs), and whether the
// interruption left a compacted checkpoint or a post-checkpoint log tail.
TEST(CampaignResumeTest, ResumedRunMatchesUninterrupted) {
  const chipmunk::FsConfig config = BuggyConfig();
  const size_t kTotal = 40;
  const size_t kInterrupt = 12;

  const std::string ref_dir = FreshDir("resume-ref");
  FuzzResult reference = RunCampaign(config, CampaignOptions(ref_dir, kTotal));
  ASSERT_FALSE(reference.unique_reports.empty())
      << "reference run surfaced no reports; the determinism check is vacuous";
  ASSERT_GT(reference.crash_states, 0u);

  struct Case {
    const char* name;
    bool log_tail;      // leave uncompacted records after the interrupt
    size_t fuzz_jobs;   // pipeline width of the resumed run
    size_t replay_jobs; // harness replay width of the resumed run
  };
  const Case cases[] = {
      {"checkpoint-only-serial", false, 1, 1},
      {"log-tail-serial", true, 1, 1},
      {"log-tail-parallel", true, 3, 2},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string dir = FreshDir(std::string("resume-") + c.name);

    // The interrupted prefix: every commit in [0, 12) is identical to the
    // uninterrupted run's (workload k's schedule never depends on the total
    // iteration count), so stopping at 12 models a SIGKILL at that barrier.
    FuzzOptions partial = CampaignOptions(dir, kInterrupt);
    partial.final_checkpoint = !c.log_tail;
    RunCampaign(config, partial);
    if (c.log_tail) {
      // checkpoint_interval 5 → checkpoint at 10, commits 10..11 in the log.
      auto loaded = CampaignStore::Load(dir);
      ASSERT_TRUE(loaded.ok());
      EXPECT_EQ(loaded->checkpoint.committed, 10u);
      EXPECT_FALSE(loaded->log.empty());
    }

    FuzzOptions resumed = CampaignOptions(dir, kTotal);
    resumed.resume = true;
    resumed.jobs = c.fuzz_jobs;
    resumed.harness.jobs = c.replay_jobs;
    FuzzEngine engine(config, resumed);
    common::Status opened = engine.OpenCampaign();
    ASSERT_TRUE(opened.ok()) << opened.ToString();
    EXPECT_EQ(engine.committed(), kInterrupt);
    ExpectSameResult(reference, engine.Run());
  }
}

TEST(CampaignResumeTest, ResumeRejectsDifferentCampaign) {
  const std::string dir = FreshDir("resume-mismatch");
  RunCampaign(BuggyConfig(), CampaignOptions(dir, 6));
  FuzzOptions other = CampaignOptions(dir, 6);
  other.seed = 8;
  other.resume = true;
  FuzzEngine engine(BuggyConfig(), other);
  common::Status opened = engine.OpenCampaign();
  EXPECT_FALSE(opened.ok());
  EXPECT_NE(opened.ToString().find("seed"), std::string::npos)
      << opened.ToString();
}

TEST(CampaignResumeTest, CheckpointCompactsLog) {
  const std::string dir = FreshDir("compaction");
  RunCampaign(BuggyConfig(), CampaignOptions(dir, 8));
  // The final checkpoint truncates the log back to its 8-byte magic.
  EXPECT_EQ(fs::file_size(fs::path(dir) / "log.bin"), 8u);
  EXPECT_TRUE(fs::exists(fs::path(dir) / "checkpoint.bin"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "index.bin"));
}

// Warm rerun: re-running a completed campaign must skip at least half of
// its crash-state mounts via the equivalence index (the ISSUE acceptance
// floor) while reproducing the identical reports and corpus.
TEST(CampaignWarmTest, WarmRerunDedupsCrossRun) {
  const std::string dir = FreshDir("warm");
  const chipmunk::FsConfig config = BuggyConfig();
  FuzzOptions options = CampaignOptions(dir, 30);
  FuzzResult cold = RunCampaign(config, options);
  ASSERT_GT(cold.crash_states, 0u);
  EXPECT_EQ(cold.states_deduped, 0u)
      << "a cold campaign has nothing to dedup against";

  FuzzResult warm = RunCampaign(config, options);
  EXPECT_EQ(warm.crash_states, cold.crash_states);
  EXPECT_GE(warm.states_deduped * 2, warm.crash_states)
      << "warm rerun skipped fewer than half of the crash-state mounts";
  // Reports, timeline, and corpus evolution are identical; only recovery
  // coverage (skipped states contribute none) may differ.
  ExpectSameResult(cold, warm, /*warm=*/true);
}

TEST(CampaignShardTest, ShardsPartitionOrdinalsAndFold) {
  const chipmunk::FsConfig config = BuggyConfig();
  const size_t kTotal = 24;
  std::vector<std::string> dirs;
  for (size_t i = 0; i < 2; ++i) {
    const std::string dir = FreshDir("shard-" + std::to_string(i));
    dirs.push_back(dir);
    FuzzOptions options = CampaignOptions(dir, kTotal);
    options.shard_index = i;
    options.shard_count = 2;
    FuzzResult r = RunCampaign(config, options);
    EXPECT_EQ(r.executed, kTotal / 2);
  }
  uint64_t committed = 0;
  for (size_t i = 0; i < 2; ++i) {
    auto loaded = CampaignStore::Load(dirs[i]);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->meta.shard_index, i);
    EXPECT_EQ(loaded->meta.shard_count, 2u);
    const store::CampaignState st = fuzz::FoldCampaign(*loaded);
    EXPECT_EQ(st.committed, kTotal / 2);
    committed += st.committed;
    // Global ordinals stay inside the shard's half of the range.
    for (const store::TimelinePoint& p : st.timeline) {
      EXPECT_GE(p.ordinal, i * kTotal / 2);
      EXPECT_LT(p.ordinal, (i + 1) * kTotal / 2);
    }
  }
  EXPECT_EQ(committed, kTotal);
}

// FoldCampaign must agree with the engine's own final result on every exact
// field — it is the read side of `campaign stats` and `campaign merge`.
TEST(CampaignFoldTest, FoldMatchesEngineResult) {
  const std::string dir = FreshDir("fold");
  FuzzResult r = RunCampaign(BuggyConfig(), CampaignOptions(dir, 20));
  auto loaded = CampaignStore::Load(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const store::CampaignState st = fuzz::FoldCampaign(*loaded);
  EXPECT_EQ(st.committed, 20u);
  EXPECT_EQ(st.executed, r.executed);
  EXPECT_EQ(st.crash_states, r.crash_states);
  EXPECT_EQ(st.states_deduped, r.states_deduped);
  EXPECT_EQ(st.lint_findings, r.lint_findings);
  EXPECT_EQ(st.hb_findings, r.hb_findings);
  EXPECT_EQ(st.corpus.size(), r.corpus_size);
  ASSERT_EQ(st.unique_reports.size(), r.unique_reports.size());
  for (size_t i = 0; i < st.unique_reports.size(); ++i) {
    EXPECT_EQ(st.unique_reports[i].Signature(),
              r.unique_reports[i].Signature());
  }
  EXPECT_EQ(st.timeline.size(), r.timeline.size());
  EXPECT_EQ(st.report_hits, r.report_hits);
}

// ---------------------------------------------------------------------------
// ACE campaigns: the sweep through the shared driver
// ---------------------------------------------------------------------------

// An interrupted ace sweep resumed with --resume matches the uninterrupted
// sweep exactly — the ISSUE acceptance line, serial and pipelined.
TEST(AceCampaignTest, ResumedSweepMatchesUninterrupted) {
  const chipmunk::FsConfig config = BuggyConfig();
  const workload::AceOptions ace = TestAceOptions();
  const size_t kTotal = 40;  // a --limit prefix of the 56-workload sweep
  const size_t kInterrupt = 12;

  const std::string ref_dir = FreshDir("ace-resume-ref");
  FuzzResult reference =
      RunAceCampaign(config, CampaignOptions(ref_dir, kTotal), ace);
  ASSERT_FALSE(reference.unique_reports.empty())
      << "reference sweep surfaced no reports; the determinism check is "
         "vacuous";
  ASSERT_GT(reference.crash_states, 0u);
  uint64_t total_hits = 0;
  for (const auto& [sig, hits] : reference.report_hits) total_hits += hits;
  EXPECT_GE(total_hits, reference.unique_reports.size());

  struct Case {
    const char* name;
    bool log_tail;
    size_t fuzz_jobs;
    size_t replay_jobs;
  };
  const Case cases[] = {
      {"checkpoint-only-serial", false, 1, 1},
      {"log-tail-parallel", true, 4, 2},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string dir = FreshDir(std::string("ace-resume-") + c.name);
    FuzzOptions partial = CampaignOptions(dir, kInterrupt);
    partial.final_checkpoint = !c.log_tail;
    RunAceCampaign(config, partial, ace);

    FuzzOptions resumed = CampaignOptions(dir, kTotal);
    resumed.resume = true;
    resumed.jobs = c.fuzz_jobs;
    resumed.harness.jobs = c.replay_jobs;
    AceEngine engine(config, resumed, ace);
    common::Status opened = engine.OpenCampaign();
    ASSERT_TRUE(opened.ok()) << opened.ToString();
    EXPECT_EQ(engine.committed(), kInterrupt);
    ExpectSameResult(reference, engine.Run());
  }
}

TEST(AceCampaignTest, ResumeRejectsDifferentSweepShape) {
  const std::string dir = FreshDir("ace-resume-shape");
  const chipmunk::FsConfig config = BuggyConfig();
  RunAceCampaign(config, CampaignOptions(dir, 6), TestAceOptions());
  workload::AceOptions other = TestAceOptions();
  other.seq = 2;
  FuzzOptions resumed = CampaignOptions(dir, 6);
  resumed.resume = true;
  AceEngine engine(config, resumed, other);
  common::Status opened = engine.OpenCampaign();
  EXPECT_FALSE(opened.ok());
  EXPECT_NE(opened.ToString().find("ace_seq"), std::string::npos)
      << opened.ToString();

  // And a fuzz engine must not resume an ace store at all.
  FuzzOptions fuzz_resume = CampaignOptions(dir, 6);
  fuzz_resume.resume = true;
  FuzzEngine fuzz_engine(config, fuzz_resume);
  common::Status fuzz_opened = fuzz_engine.OpenCampaign();
  EXPECT_FALSE(fuzz_opened.ok());
  EXPECT_NE(fuzz_opened.ToString().find("generator"), std::string::npos)
      << fuzz_opened.ToString();
}

// Warm rerun of a completed sweep: at least half the crash-state mounts are
// skipped via the persisted index (the ISSUE acceptance floor), with
// byte-identical reports and hit counts.
TEST(AceCampaignTest, WarmRerunDedupsCrossRun) {
  const std::string dir = FreshDir("ace-warm");
  const chipmunk::FsConfig config = BuggyConfig();
  const workload::AceOptions ace = TestAceOptions();
  FuzzOptions options = CampaignOptions(dir, 30);
  FuzzResult cold = RunAceCampaign(config, options, ace);
  ASSERT_GT(cold.crash_states, 0u);
  EXPECT_EQ(cold.states_deduped, 0u);

  FuzzResult warm = RunAceCampaign(config, options, ace);
  EXPECT_EQ(warm.crash_states, cold.crash_states);
  EXPECT_GE(warm.states_deduped * 2, warm.crash_states)
      << "warm rerun skipped fewer than half of the crash-state mounts";
  ExpectSameResult(cold, warm, /*warm=*/true);
}

// shard 0/2 + shard 1/2 + merge reproduces the unsharded sweep: same unique
// reports, same per-signature hit counts, same committed total.
TEST(AceCampaignTest, ShardMergeMatchesUnsharded) {
  const chipmunk::FsConfig config = BuggyConfig();
  const workload::AceOptions ace = TestAceOptions();
  const size_t kTotal = 24;

  const std::string full_dir = FreshDir("ace-shard-full");
  FuzzResult full =
      RunAceCampaign(config, CampaignOptions(full_dir, kTotal), ace);
  ASSERT_FALSE(full.unique_reports.empty());

  std::vector<std::string> shard_dirs;
  for (size_t i = 0; i < 2; ++i) {
    const std::string dir = FreshDir("ace-shard-" + std::to_string(i));
    shard_dirs.push_back(dir);
    FuzzOptions options = CampaignOptions(dir, kTotal);
    options.shard_index = i;
    options.shard_count = 2;
    FuzzResult r = RunAceCampaign(config, options, ace);
    EXPECT_EQ(r.executed, kTotal / 2);
  }

  auto merged = fuzz::MergeCampaigns(shard_dirs);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged->same_campaign);
  EXPECT_TRUE(merged->meta.merged);
  EXPECT_EQ(merged->meta.generator, "ace");
  EXPECT_EQ(merged->state.committed, kTotal);
  EXPECT_EQ(merged->state.report_hits, full.report_hits);
  ASSERT_EQ(merged->state.unique_reports.size(), full.unique_reports.size());
  for (size_t i = 0; i < full.unique_reports.size(); ++i) {
    EXPECT_EQ(merged->state.unique_reports[i].Signature(),
              full.unique_reports[i].Signature());
  }
}

// ---------------------------------------------------------------------------
// Cross-generator merge: ace + fuzz stores over the same target
// ---------------------------------------------------------------------------

TEST(CrossMergeTest, AceAndFuzzStoresFoldTogether) {
  const chipmunk::FsConfig config = BuggyConfig();
  const std::string ace_dir = FreshDir("cross-ace");
  const std::string fuzz_dir = FreshDir("cross-fuzz");
  FuzzResult ace_r =
      RunAceCampaign(config, CampaignOptions(ace_dir, 30), TestAceOptions());
  FuzzResult fuzz_r = RunCampaign(config, CampaignOptions(fuzz_dir, 20));
  ASSERT_FALSE(ace_r.unique_reports.empty());
  ASSERT_FALSE(fuzz_r.unique_reports.empty());

  auto merged = fuzz::MergeCampaigns({ace_dir, fuzz_dir});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_FALSE(merged->same_campaign);
  EXPECT_TRUE(merged->meta.merged);
  EXPECT_EQ(merged->meta.generator, "mixed");
  EXPECT_EQ(merged->meta.ace_seq, 0u);
  EXPECT_EQ(merged->state.committed, 50u);
  EXPECT_EQ(merged->meta.iterations, 50u);

  // Unique reports are the signature-level union; hit counts sum.
  std::map<std::string, uint64_t> want_hits = ace_r.report_hits;
  for (const auto& [sig, hits] : fuzz_r.report_hits) want_hits[sig] += hits;
  EXPECT_EQ(merged->state.report_hits, want_hits);
  std::set<std::string> union_sigs;
  for (const auto& r : ace_r.unique_reports) union_sigs.insert(r.Signature());
  for (const auto& r : fuzz_r.unique_reports) union_sigs.insert(r.Signature());
  EXPECT_EQ(merged->state.unique_reports.size(), union_sigs.size());
  for (const auto& r : merged->state.unique_reports) {
    EXPECT_TRUE(union_sigs.count(r.Signature())) << r.Signature();
  }
}

TEST(CrossMergeTest, RejectsDifferentTarget) {
  const std::string ace_dir = FreshDir("cross-reject-ace");
  RunAceCampaign(BuggyConfig(), CampaignOptions(ace_dir, 10),
                 TestAceOptions());

  // Same fs, different bug set: a different system under test.
  vfs::BugSet other_bugs;
  other_bugs.Enable(vfs::BugId::kNova1LogPageInitOrder);
  auto other_config = MakeFsConfig("novafs", other_bugs, kDev);
  ASSERT_TRUE(other_config.ok()) << other_config.status().ToString();
  const std::string other_dir = FreshDir("cross-reject-fuzz");
  RunCampaign(*other_config, CampaignOptions(other_dir, 5));

  auto merged = fuzz::MergeCampaigns({ace_dir, other_dir});
  EXPECT_FALSE(merged.ok());
  EXPECT_NE(merged.status().ToString().find("bugs"), std::string::npos)
      << merged.status().ToString();
}

}  // namespace
