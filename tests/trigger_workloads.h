// Forwarding header: the catalog lives in the workload library now.
#ifndef CHIPMUNK_TESTS_TRIGGER_WORKLOADS_H_
#define CHIPMUNK_TESTS_TRIGGER_WORKLOADS_H_
#include "src/workload/triggers.h"
#endif  // CHIPMUNK_TESTS_TRIGGER_WORKLOADS_H_
