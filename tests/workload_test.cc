#include <gtest/gtest.h>

#include "src/core/fs_registry.h"
#include "src/core/runner.h"
#include "src/pmem/pm_device.h"
#include "src/workload/serialize.h"
#include "src/workload/triggers.h"
#include "src/workload/workload.h"

namespace {

using workload::MakeData;
using workload::Op;
using workload::OpKind;
using workload::ParentPath;
using workload::Workload;

TEST(ParentPathTest, Basics) {
  EXPECT_EQ(ParentPath("/a/b/c"), "/a/b");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(ParentPath("/"), "/");
}

TEST(MakeDataTest, DeterministicAndOffsetSensitive) {
  auto a = MakeData('a', 0, 100);
  auto b = MakeData('a', 0, 100);
  EXPECT_EQ(a, b);
  // A chunk starting at offset 50 must equal the tail of the full buffer:
  // the pattern is position-based so torn-write checks compare bytes.
  auto tail = MakeData('a', 50, 50);
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(), a.begin() + 50));
  // Different fills differ.
  auto c = MakeData('q', 0, 100);
  EXPECT_NE(a, c);
}

TEST(UniverseTest, IncludesAncestors) {
  Workload w;
  Op op;
  op.kind = OpKind::kCreat;
  op.path = "/a/b/c";
  w.ops.push_back(op);
  Op op2;
  op2.kind = OpKind::kRename;
  op2.path = "/a/b/c";
  op2.path2 = "/d/e";
  w.ops.push_back(op2);
  auto universe = w.Universe();
  for (const char* p : {"/", "/a", "/a/b", "/a/b/c", "/d", "/d/e"}) {
    EXPECT_NE(std::find(universe.begin(), universe.end(), p), universe.end())
        << p;
  }
  // Sorted and unique.
  EXPECT_TRUE(std::is_sorted(universe.begin(), universe.end()));
  EXPECT_EQ(std::unique(universe.begin(), universe.end()), universe.end());
}

TEST(OpToString, CarriesSalientFields) {
  Op op;
  op.kind = OpKind::kPwrite;
  op.path = "/f";
  op.off = 8;
  op.len = 100;
  op.fd_slot = 2;
  EXPECT_EQ(op.ToString(), "pwrite /f off=8 len=100 slot=2");
  Op setup;
  setup.kind = OpKind::kMkdir;
  setup.path = "/A";
  setup.setup = true;
  EXPECT_EQ(setup.ToString(), "mkdir /A (setup)");
}

TEST(TriggerCatalog, EveryBugHasATrigger) {
  auto workloads = trigger::AllTriggerWorkloads();
  for (const vfs::BugInfo& info : vfs::AllBugs()) {
    const char* name = trigger::TriggerFor(info.id);
    EXPECT_NE(trigger::FindWorkload(workloads, name), nullptr)
        << "bug " << static_cast<int>(info.id) << " -> " << name;
  }
}

TEST(TriggerCatalog, NamesAreUnique) {
  auto workloads = trigger::AllTriggerWorkloads();
  std::set<std::string> names;
  for (const auto& w : workloads) {
    EXPECT_TRUE(names.insert(w.name).second) << w.name;
  }
}

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto config = chipmunk::MakeFsConfig("novafs", {}, 1024 * 1024);
    ASSERT_TRUE(config.ok());
    dev_ = std::make_unique<pmem::PmDevice>(config->device_size);
    pm_ = std::make_unique<pmem::Pm>(dev_.get());
    fs_ = config->make(pm_.get());
    ASSERT_TRUE(fs_->Mkfs().ok());
    ASSERT_TRUE(fs_->Mount().ok());
    vfs_ = std::make_unique<vfs::Vfs>(fs_.get());
  }
  std::unique_ptr<pmem::PmDevice> dev_;
  std::unique_ptr<pmem::Pm> pm_;
  std::unique_ptr<vfs::FileSystem> fs_;
  std::unique_ptr<vfs::Vfs> vfs_;
};

TEST_F(RunnerTest, FdSlotsThreadThroughOps) {
  Workload w;
  w.ops = {trigger::MkOpen("/f", 3), trigger::MkPwrite("/f", 3, 0, 64),
           trigger::MkClose(3)};
  chipmunk::WorkloadRunner runner(&w, vfs_.get(), nullptr);
  auto statuses = runner.RunAll();
  for (size_t i = 0; i < statuses.size(); ++i) {
    EXPECT_TRUE(statuses[i].ok()) << i << ": " << statuses[i].ToString();
  }
  EXPECT_EQ(vfs_->Stat("/f")->size, 64u);
}

TEST_F(RunnerTest, FdOpsWithoutOpenReturnBadFd) {
  Workload w;
  w.ops = {trigger::MkPwrite("/f", 0, 0, 64)};
  chipmunk::WorkloadRunner runner(&w, vfs_.get(), nullptr);
  auto statuses = runner.RunAll();
  EXPECT_EQ(statuses[0].code(), common::ErrorCode::kBadFd);
}

TEST_F(RunnerTest, MarkersBracketEverySyscall) {
  Workload w;
  w.ops = {trigger::MkOp(OpKind::kCreat, "/x"),
           trigger::MkOp(OpKind::kMkdir, "/d")};
  pmem::TraceLogger logger;
  pm_->AddHook(&logger);
  chipmunk::WorkloadRunner runner(&w, vfs_.get(), pm_.get());
  runner.RunAll();
  pm_->RemoveHook(&logger);
  int begins = 0;
  int ends = 0;
  for (const pmem::PmOp& op : logger.trace()) {
    if (op.kind == pmem::PmOpKind::kMarker) {
      if (op.marker == pmem::MarkerKind::kSyscallBegin) {
        ++begins;
      }
      if (op.marker == pmem::MarkerKind::kSyscallEnd) {
        ++ends;
      }
    }
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  // Every non-marker op belongs to some syscall.
  for (const pmem::PmOp& op : logger.trace()) {
    if (op.kind != pmem::PmOpKind::kMarker) {
      EXPECT_GE(op.syscall_index, 0);
    }
  }
}

TEST_F(RunnerTest, AppendOpenWritesAtEof) {
  Workload w;
  auto open1 = trigger::MkOpen("/f", 0);
  Op wr;
  wr.kind = OpKind::kWrite;
  wr.path = "/f";
  wr.fd_slot = 0;
  wr.len = 10;
  auto open2 = trigger::MkOpen("/f", 1);
  open2.oflag_append = true;
  Op wr2 = wr;
  wr2.fd_slot = 1;
  w.ops = {open1, wr, trigger::MkClose(0), open2, wr2, trigger::MkClose(1)};
  chipmunk::WorkloadRunner runner(&w, vfs_.get(), nullptr);
  runner.RunAll();
  EXPECT_EQ(vfs_->Stat("/f")->size, 20u);
}

// ---------------------------------------------------------------------------
// Text-format round trips, single- and multi-threaded
// ---------------------------------------------------------------------------

TEST(SerializeTest, SingleThreadedTextIsUnchangedByConcurrencySupport) {
  // A classic workload serializes with no thread directives and no tid
  // tokens — files written before concurrency support parse and re-emit
  // byte-identically.
  const std::string text =
      "creat /foo\n"
      "open /foo slot=0 create\n"
      "pwrite /foo slot=0 off=0 len=5000 fill=a\n"
      "fsync /foo slot=0\n"
      "close slot=0\n";
  auto parsed = workload::ParseWorkload(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->threads, 1);
  EXPECT_EQ(parsed->schedule_seed, 0u);
  for (const Op& op : parsed->ops) {
    EXPECT_EQ(op.tid, 0);
  }
  // Serialize prepends only the name header; the op lines are untouched and
  // no thread directives or tid tokens appear.
  const std::string reserialized = workload::Serialize(*parsed);
  EXPECT_EQ(reserialized, "# workload: parsed\n" + text);
  EXPECT_EQ(reserialized.find("threads"), std::string::npos);
  EXPECT_EQ(reserialized.find("tid="), std::string::npos);
}

TEST(SerializeTest, MultiThreadedRoundTripIsByteIdentical) {
  Workload w;
  w.name = "mt";
  w.threads = 3;
  w.schedule_seed = 0xfeedbeef;
  auto on = [](Op op, int tid) {
    op.tid = tid;
    return op;
  };
  w.ops = {on(trigger::MkOpen("/f", 0), 0),
           on(trigger::MkPwrite("/f", 0, 0, 4096), 0),
           on(trigger::MkOp(OpKind::kCreat, "/g"), 1),
           on(trigger::MkOp(OpKind::kRename, "/g", "/h"), 2),
           on(trigger::MkClose(0), 0)};

  const std::string text = workload::Serialize(w);
  auto parsed = workload::ParseWorkload(text, w.name);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->threads, 3);
  EXPECT_EQ(parsed->schedule_seed, 0xfeedbeefu);
  ASSERT_EQ(parsed->ops.size(), w.ops.size());
  for (size_t i = 0; i < w.ops.size(); ++i) {
    EXPECT_EQ(parsed->ops[i].tid, w.ops[i].tid) << "op " << i;
    EXPECT_EQ(parsed->ops[i].ToString(), w.ops[i].ToString()) << "op " << i;
  }
  // The round trip is exact: serialize(parse(serialize(w))) == serialize(w).
  EXPECT_EQ(workload::Serialize(*parsed), text);
}

TEST(SerializeTest, ThreadDirectivesRejectGarbage) {
  EXPECT_FALSE(workload::ParseWorkload("# threads: zero\ncreat /a\n").ok());
  EXPECT_FALSE(workload::ParseWorkload("# threads: 0\ncreat /a\n").ok());
  EXPECT_FALSE(
      workload::ParseWorkload("# schedule-seed: -1\ncreat /a\n").ok());
  EXPECT_FALSE(
      workload::ParseWorkload("# threads: 2\ncreat /a tid=x\n").ok());
}

}  // namespace
