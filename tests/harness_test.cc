// End-to-end tests of the Chipmunk pipeline against novafs: the fixed file
// system must produce zero reports on every trigger workload, and each
// injected Table 1 bug must be detected by at least one of them.
#include <gtest/gtest.h>

#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/fs/novafs/nova_fs.h"
#include "src/vfs/bug.h"

namespace {

using chipmunk::CheckKind;
using chipmunk::FsConfig;
using chipmunk::Harness;
using chipmunk::HarnessOptions;
using chipmunk::MakeFsConfig;
using chipmunk::RunStats;
using vfs::BugId;
using workload::Op;
using workload::OpKind;
using workload::Workload;

constexpr size_t kDev = 1024 * 1024;

Op MkOp(OpKind kind, std::string path = "", std::string path2 = "") {
  Op op;
  op.kind = kind;
  op.path = std::move(path);
  op.path2 = std::move(path2);
  return op;
}

Op MkOpen(std::string path, int slot, bool create = true) {
  Op op = MkOp(OpKind::kOpen, std::move(path));
  op.fd_slot = slot;
  op.oflag_create = create;
  return op;
}

Op MkPwrite(std::string path, int slot, uint64_t off, uint64_t len) {
  Op op = MkOp(OpKind::kPwrite, std::move(path));
  op.fd_slot = slot;
  op.off = off;
  op.len = len;
  return op;
}

Op MkClose(int slot) {
  Op op = MkOp(OpKind::kClose);
  op.fd_slot = slot;
  return op;
}

Op MkTruncate(std::string path, uint64_t size) {
  Op op = MkOp(OpKind::kTruncate, std::move(path));
  op.len = size;
  return op;
}

Op MkFalloc(std::string path, int slot, uint32_t mode, uint64_t off,
            uint64_t len) {
  Op op = MkOp(OpKind::kFalloc, std::move(path));
  op.fd_slot = slot;
  op.falloc_mode = mode;
  op.off = off;
  op.len = len;
  return op;
}

// The trigger workloads, each shaped like the paper describes for the
// corresponding bug class.
std::vector<Workload> TriggerWorkloads() {
  std::vector<Workload> all;

  Workload creat;
  creat.name = "creat";
  creat.ops = {MkOp(OpKind::kCreat, "/foo")};
  all.push_back(creat);

  Workload mkdir_w;
  mkdir_w.name = "mkdir";
  mkdir_w.ops = {MkOp(OpKind::kMkdir, "/A")};
  all.push_back(mkdir_w);

  Workload write_w;
  write_w.name = "write";
  write_w.ops = {MkOpen("/foo", 0), MkPwrite("/foo", 0, 0, 5000), MkClose(0)};
  all.push_back(write_w);

  Workload rename_w;
  rename_w.name = "rename";
  rename_w.ops = {MkOp(OpKind::kCreat, "/foo"),
                  MkOp(OpKind::kRename, "/foo", "/bar")};
  all.push_back(rename_w);

  Workload rename_over;
  rename_over.name = "rename-overwrite";
  rename_over.ops = {MkOp(OpKind::kCreat, "/foo"), MkOp(OpKind::kCreat, "/bar"),
                     MkOp(OpKind::kRename, "/foo", "/bar")};
  all.push_back(rename_over);

  Workload link2;
  link2.name = "link-twice";
  link2.ops = {MkOp(OpKind::kCreat, "/foo"), MkOp(OpKind::kLink, "/foo", "/l1"),
               MkOp(OpKind::kLink, "/foo", "/l2")};
  all.push_back(link2);

  Workload unlink_w;
  unlink_w.name = "unlink";
  unlink_w.ops = {MkOp(OpKind::kCreat, "/foo"), MkOp(OpKind::kUnlink, "/foo")};
  all.push_back(unlink_w);

  Workload trunc;
  trunc.name = "truncate-unaligned";
  trunc.ops = {MkOpen("/foo", 0), MkPwrite("/foo", 0, 0, 9000), MkClose(0),
               MkTruncate("/foo", 2500)};
  all.push_back(trunc);

  Workload falloc_over;
  falloc_over.name = "falloc-over-data";
  falloc_over.ops = {MkOpen("/foo", 0), MkPwrite("/foo", 0, 0, 3000),
                     MkFalloc("/foo", 0, 0, 0, 3000), MkClose(0)};
  all.push_back(falloc_over);

  Workload roll;
  roll.name = "log-roll";
  roll.ops = {MkOp(OpKind::kCreat, "/f1"), MkOp(OpKind::kCreat, "/f2"),
              MkOp(OpKind::kCreat, "/f3"), MkOp(OpKind::kCreat, "/f4"),
              MkOp(OpKind::kCreat, "/f5")};
  all.push_back(roll);

  Workload rmdir_w;
  rmdir_w.name = "rmdir";
  rmdir_w.ops = {MkOp(OpKind::kMkdir, "/A"), MkOp(OpKind::kRmdir, "/A")};
  all.push_back(rmdir_w);

  return all;
}

RunStats MustRun(Harness& harness, const Workload& w) {
  auto stats = harness.TestWorkload(w);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString() << " on " << w.name;
  return stats.ok() ? std::move(stats).value() : RunStats{};
}

TEST(HarnessClean, FixedNovaPassesAllTriggerWorkloads) {
  for (const char* fs : {"novafs", "novafs-fortis"}) {
    auto config = MakeFsConfig(fs, {}, kDev);
    ASSERT_TRUE(config.ok());
    Harness harness(*config);
    for (const Workload& w : TriggerWorkloads()) {
      RunStats stats = MustRun(harness, w);
      EXPECT_TRUE(stats.clean())
          << fs << " workload " << w.name << ": "
          << (stats.reports.empty() ? "" : stats.reports[0].ToString());
      EXPECT_GT(stats.crash_states, 0u) << fs << " " << w.name;
    }
  }
}

struct BugCase {
  BugId bug;
  const char* workload;  // trigger workload name
};

class NovaBugDetection : public ::testing::TestWithParam<BugCase> {};

TEST_P(NovaBugDetection, ChipmunkFindsInjectedBug) {
  const BugCase& bug_case = GetParam();
  auto config = chipmunk::MakeBugConfig(bug_case.bug, kDev);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  Harness harness(*config);
  const Workload* w = nullptr;
  auto workloads = TriggerWorkloads();
  for (const Workload& cand : workloads) {
    if (cand.name == bug_case.workload) {
      w = &cand;
    }
  }
  ASSERT_NE(w, nullptr);
  RunStats stats = MustRun(harness, *w);
  EXPECT_FALSE(stats.clean())
      << "bug " << static_cast<int>(bug_case.bug) << " not detected on "
      << w->name;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, NovaBugDetection,
    ::testing::Values(BugCase{BugId::kNova1LogPageInitOrder, "log-roll"},
                      BugCase{BugId::kNova2InodeFlushMissing, "creat"},
                      BugCase{BugId::kNova2InodeFlushMissing, "mkdir"},
                      BugCase{BugId::kNova3TailOverrun, "log-roll"},
                      BugCase{BugId::kNova4RenameInPlaceDelete, "rename"},
                      BugCase{BugId::kNova5RenameOverwriteInPlace,
                              "rename-overwrite"},
                      BugCase{BugId::kNova6LinkInPlaceCount, "link-twice"},
                      BugCase{BugId::kNova7TruncateRebuildDrop,
                              "truncate-unaligned"},
                      BugCase{BugId::kNova8FallocClobber, "falloc-over-data"},
                      BugCase{BugId::kFortis9CsumNotFlushed, "unlink"},
                      BugCase{BugId::kFortis10ReplicaNotJournaled, "write"},
                      BugCase{BugId::kFortis11TruncListReplay,
                              "truncate-unaligned"},
                      BugCase{BugId::kFortis12TruncCsumStale,
                              "truncate-unaligned"}),
    [](const ::testing::TestParamInfo<BugCase>& info) {
      return "bug" + std::to_string(static_cast<int>(info.param.bug)) + "_" +
             std::to_string(info.index);
    });

TEST(HarnessStats, InflightCountsAreSmallForMetadataOps) {
  auto config = MakeFsConfig("novafs", {}, kDev);
  ASSERT_TRUE(config.ok());
  Harness harness(*config);
  Workload w;
  w.name = "meta";
  w.ops = {MkOp(OpKind::kCreat, "/a"), MkOp(OpKind::kMkdir, "/d"),
           MkOp(OpKind::kRename, "/a", "/d/b")};
  RunStats stats = MustRun(harness, w);
  ASSERT_FALSE(stats.inflight.empty());
  size_t max_inflight = 0;
  for (const auto& sample : stats.inflight) {
    max_inflight = std::max(max_inflight, sample.writes);
  }
  EXPECT_LE(max_inflight, 12u);  // §3.2: small in-flight sets for metadata
}

TEST(HarnessOptionsTest, ReplayCapLimitsStates) {
  auto config = MakeFsConfig("novafs", {}, kDev);
  ASSERT_TRUE(config.ok());
  Workload w;
  w.name = "write";
  w.ops = {MkOpen("/foo", 0), MkPwrite("/foo", 0, 0, 8000), MkClose(0)};
  HarnessOptions capped;
  capped.replay_cap = 1;
  Harness h_capped(*config, capped);
  Harness h_full(*config);
  RunStats capped_stats = MustRun(h_capped, w);
  RunStats full_stats = MustRun(h_full, w);
  EXPECT_LE(capped_stats.crash_states, full_stats.crash_states);
}

TEST(HarnessOptionsTest, StopAtFirstReportShortCircuits) {
  auto config = chipmunk::MakeBugConfig(BugId::kNova4RenameInPlaceDelete, kDev);
  ASSERT_TRUE(config.ok());
  HarnessOptions opt;
  opt.stop_at_first_report = true;
  Harness fast(*config, opt);
  Harness slow(*config);
  Workload w;
  w.name = "rename";
  w.ops = {MkOp(OpKind::kCreat, "/foo"), MkOp(OpKind::kRename, "/foo", "/bar")};
  RunStats fast_stats = MustRun(fast, w);
  RunStats slow_stats = MustRun(slow, w);
  EXPECT_FALSE(fast_stats.clean());
  EXPECT_LE(fast_stats.crash_states, slow_stats.crash_states);
}

TEST(HarnessReports, RenameBugReportHasReproductionDetail) {
  auto config = chipmunk::MakeBugConfig(BugId::kNova4RenameInPlaceDelete, kDev);
  ASSERT_TRUE(config.ok());
  Harness harness(*config);
  Workload w;
  w.name = "rename";
  w.ops = {MkOp(OpKind::kCreat, "/foo"), MkOp(OpKind::kRename, "/foo", "/bar")};
  RunStats stats = MustRun(harness, w);
  ASSERT_FALSE(stats.clean());
  bool found_atomicity = false;
  for (const auto& r : stats.reports) {
    if (r.kind == CheckKind::kAtomicity && r.mid_syscall) {
      found_atomicity = true;
      EXPECT_EQ(r.syscall_index, 1);
      EXPECT_NE(r.syscall.find("rename"), std::string::npos);
      EXPECT_FALSE(r.workload_name.empty());
    }
  }
  EXPECT_TRUE(found_atomicity);
}

}  // namespace

TEST(NonCrashConsistencyBugs, GreedyHugeWriteSurfacesAsUsability) {
  // §4.4: the fuzzer also found non-crash-consistency bugs, e.g. NOVA
  // allocating all remaining space on an absurd write size so that "most
  // subsequent operations fail". Those surface through the checker's
  // usability probes rather than the oracle comparison.
  chipmunk::FsConfig config;
  config.name = "novafs-greedy";
  config.device_size = 1024 * 1024;
  config.make = [](pmem::Pm* pm) -> std::unique_ptr<vfs::FileSystem> {
    novafs::NovaOptions options;
    options.greedy_huge_writes = true;
    return std::make_unique<novafs::NovaFs>(pm, options);
  };
  Workload w;
  w.name = "huge-write";
  w.ops = {MkOpen("/f", 0), MkPwrite("/f", 0, 0, 32 * 1024 * 1024),
           MkClose(0), MkOp(OpKind::kCreat, "/g")};
  Harness harness(config);
  auto stats = harness.TestWorkload(w);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  bool usability = false;
  for (const auto& r : stats->reports) {
    usability |= r.kind == CheckKind::kUsability;
  }
  EXPECT_TRUE(usability) << "expected a usability report";
}
