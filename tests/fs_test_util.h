// Shared helpers for file-system tests: a random-workload generator and a
// differential driver that checks any FileSystem implementation against the
// in-DRAM ReferenceFs, syscall by syscall.
#ifndef CHIPMUNK_TESTS_FS_TEST_UTIL_H_
#define CHIPMUNK_TESTS_FS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/fs/reference/reference_fs.h"
#include "src/vfs/vfs.h"

namespace fs_test {

// One syscall of a randomized differential workload.
struct RandOp {
  enum Kind {
    kCreat,
    kMkdir,
    kUnlink,
    kRmdir,
    kLink,
    kRename,
    kWrite,
    kPwrite,
    kTruncate,
    kFallocate,
    kStat,
    kReadDir,
    kReadFile,
  };
  Kind kind;
  std::string path;
  std::string path2;
  uint64_t off = 0;
  uint64_t len = 0;
  uint32_t mode = 0;
  uint8_t fill = 0;
};

inline std::vector<std::string> TestPaths() {
  return {"/foo", "/bar", "/baz",    "/A",      "/B",      "/A/foo",
          "/A/bar", "/B/foo", "/A/C", "/A/C/x", "/B/y",    "/longishname"};
}

inline RandOp RandomOp(common::Rng& rng) {
  static const std::vector<std::string> kPaths = TestPaths();
  RandOp op;
  op.kind = static_cast<RandOp::Kind>(rng.Below(13));
  op.path = rng.Pick(kPaths);
  op.path2 = rng.Pick(kPaths);
  op.off = rng.Below(3) * 4096 + rng.Below(200);
  op.len = 1 + rng.Below(3000);
  uint32_t modes[] = {0, vfs::kFallocKeepSize, vfs::kFallocZeroRange,
                      vfs::kFallocZeroRange | vfs::kFallocKeepSize,
                      vfs::kFallocPunchHole | vfs::kFallocKeepSize};
  op.mode = modes[rng.Below(5)];
  op.fill = static_cast<uint8_t>('a' + rng.Below(26));
  return op;
}

// Applies `op` through a Vfs; returns the status. Content-producing calls
// fill `out` so callers can compare behaviours.
inline common::Status ApplyOp(vfs::Vfs& v, const RandOp& op,
                              std::string* out) {
  out->clear();
  switch (op.kind) {
    case RandOp::kCreat: {
      auto fd = v.Open(op.path, {.create = true});
      if (!fd.ok()) {
        return fd.status();
      }
      return v.Close(*fd);
    }
    case RandOp::kMkdir:
      return v.Mkdir(op.path);
    case RandOp::kUnlink:
      return v.Unlink(op.path);
    case RandOp::kRmdir:
      return v.Rmdir(op.path);
    case RandOp::kLink:
      return v.Link(op.path, op.path2);
    case RandOp::kRename:
      return v.Rename(op.path, op.path2);
    case RandOp::kWrite:
    case RandOp::kPwrite: {
      auto fd = v.Open(op.path, {.create = true});
      if (!fd.ok()) {
        return fd.status();
      }
      std::vector<uint8_t> data(op.len, op.fill);
      auto n = op.kind == RandOp::kWrite
                   ? v.Write(*fd, data.data(), data.size())
                   : v.Pwrite(*fd, data.data(), data.size(), op.off);
      common::Status close_st = v.Close(*fd);
      if (!n.ok()) {
        return n.status();
      }
      *out = "wrote " + std::to_string(*n);
      return close_st;
    }
    case RandOp::kTruncate:
      return v.Truncate(op.path, op.off + op.len % 5000);
    case RandOp::kFallocate: {
      auto fd = v.Open(op.path, {});
      if (!fd.ok()) {
        return fd.status();
      }
      common::Status st = v.FallocateFd(*fd, op.mode, op.off, op.len);
      common::Status close_st = v.Close(*fd);
      if (!st.ok()) {
        return st;
      }
      return close_st;
    }
    case RandOp::kStat: {
      auto st = v.Stat(op.path);
      if (!st.ok()) {
        return st.status();
      }
      *out = "type=" + std::to_string(static_cast<int>(st->type)) +
             " size=" + std::to_string(st->size) +
             " nlink=" + std::to_string(st->nlink);
      return common::OkStatus();
    }
    case RandOp::kReadDir: {
      auto entries = v.ReadDir(op.path);
      if (!entries.ok()) {
        return entries.status();
      }
      for (const auto& e : *entries) {
        *out += e.name + ";";
      }
      return common::OkStatus();
    }
    case RandOp::kReadFile: {
      auto data = v.ReadFile(op.path);
      if (!data.ok()) {
        return data.status();
      }
      *out = std::string(data->begin(), data->end());
      return common::OkStatus();
    }
  }
  return common::Internal("unreachable");
}

// Runs `steps` random syscalls against `target` and a fresh ReferenceFs and
// asserts identical visible behaviour after every step.
inline void RunDifferential(vfs::FileSystem* target, uint64_t seed,
                            int steps) {
  reffs::ReferenceFs ref;
  ASSERT_TRUE(ref.Mkfs().ok());
  ASSERT_TRUE(ref.Mount().ok());
  vfs::Vfs vt(target);
  vfs::Vfs vr(&ref);
  common::Rng rng(seed);
  for (int i = 0; i < steps; ++i) {
    RandOp op = RandomOp(rng);
    std::string out_t, out_r;
    common::Status st_t = ApplyOp(vt, op, &out_t);
    common::Status st_r = ApplyOp(vr, op, &out_r);
    ASSERT_EQ(st_t.code(), st_r.code())
        << "step " << i << " op " << op.kind << " path " << op.path << " -> "
        << op.path2 << ": target=" << st_t.ToString()
        << " reference=" << st_r.ToString();
    ASSERT_EQ(out_t, out_r) << "step " << i << " op " << op.kind << " path "
                            << op.path << " -> " << op.path2;
  }
}

}  // namespace fs_test

#endif  // CHIPMUNK_TESTS_FS_TEST_UTIL_H_
