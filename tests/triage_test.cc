// Triage edge cases: signature stability under varying numeric detail, and
// clustering behavior on empty and offset-only-variant report lists.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/report.h"
#include "src/fuzz/triage.h"

namespace {

using chipmunk::BugReport;
using chipmunk::CheckKind;
using fuzz::ClusterReports;
using fuzz::ReportCluster;
using fuzz::TokenizeReport;
using fuzz::TokenSimilarity;

BugReport MakeReport(CheckKind kind, const std::string& syscall,
                     const std::string& detail) {
  BugReport r;
  r.fs = "novafs";
  r.workload_name = "fuzz-0";
  r.kind = kind;
  r.syscall = syscall;
  r.detail = detail;
  r.syscall_index = 1;
  r.crash_point = 4;
  return r;
}

TEST(TriageTest, EmptyReportListYieldsNoClusters) {
  EXPECT_TRUE(ClusterReports({}).empty());
  EXPECT_TRUE(ClusterReports({}, 0.0).empty());
  EXPECT_TRUE(ClusterReports({}, 1.0).empty());
}

TEST(TriageTest, TokenizerDropsNumbers) {
  BugReport r = MakeReport(CheckKind::kAtomicity, "write /f0 4096 512",
                           "mismatch at offset 8192, size 512");
  for (const std::string& tok : TokenizeReport(r)) {
    for (char c : tok) {
      EXPECT_FALSE(c >= '0' && c <= '9')
          << "token '" << tok << "' kept a digit";
    }
  }
}

// The same underlying bug hit at different offsets/sizes must triage as one
// bug: identical signature and a single cluster.
TEST(TriageTest, OffsetVariantsShareSignatureAndCluster) {
  BugReport a = MakeReport(CheckKind::kAtomicity, "write /f0 0 4096",
                           "mismatch at offset 0, size 4096");
  BugReport b = MakeReport(CheckKind::kAtomicity, "write /f0 8192 512",
                           "mismatch at offset 8192, size 512");
  EXPECT_EQ(a.Signature(), b.Signature());
  EXPECT_DOUBLE_EQ(TokenSimilarity(TokenizeReport(a), TokenizeReport(b)), 1.0);
  std::vector<ReportCluster> clusters = ClusterReports({a, b});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 2u);
}

TEST(TriageTest, DistinctKindsFormDistinctClusters) {
  BugReport a = MakeReport(CheckKind::kAtomicity, "write /f0 0 4096",
                           "mid-syscall state matches neither side");
  BugReport b = MakeReport(CheckKind::kMountFailure, "rename /a /b",
                           "mount failed: log page uninitialized");
  EXPECT_NE(a.Signature(), b.Signature());
  EXPECT_EQ(ClusterReports({a, b}).size(), 2u);
}

// Signature must not move when fields outside the identity (detail text,
// workload name, crash point, subset, offsets inside the syscall) vary —
// report dedup, the campaign log, and `campaign merge` all key on it.
TEST(TriageTest, SignatureIgnoresNonIdentityFields) {
  BugReport a = MakeReport(CheckKind::kSynchrony, "write /dir/f 0 100",
                           "oracle mismatch");
  BugReport b = a;
  b.workload_name = "fuzz-999";
  b.detail = "a completely different explanation";
  b.crash_point = 77;
  b.subset = {1, 2, 3};
  b.syscall_index = 9;
  b.mid_syscall = !a.mid_syscall;
  b.syscall = "write /other/path 5000 9999";  // same op kind, new operands
  EXPECT_EQ(a.Signature(), b.Signature());

  // ...and it must move on every identity component.
  BugReport other_fs = a;
  other_fs.fs = "pmfs";
  EXPECT_NE(a.Signature(), other_fs.Signature());
  BugReport other_kind = a;
  other_kind.kind = CheckKind::kUnreadable;
  EXPECT_NE(a.Signature(), other_kind.Signature());
  BugReport other_op = a;
  other_op.syscall = "unlink /dir/f";
  EXPECT_NE(a.Signature(), other_op.Signature());
  BugReport lint = a;
  lint.kind = CheckKind::kLintFinding;
  lint.lint_rule = "missing-flush";
  BugReport lint2 = lint;
  lint2.lint_rule = "missing-fence";
  EXPECT_NE(lint.Signature(), lint2.Signature());
}

// An empty syscall string (reports synthesized without an op, e.g. mount
// failures found before any syscall ran) must still produce a stable,
// well-formed signature instead of slicing out of range.
TEST(TriageTest, EmptySyscallSignatureIsStable) {
  BugReport r = MakeReport(CheckKind::kMountFailure, "", "mount failed");
  r.syscall_index = -1;
  EXPECT_EQ(r.Signature(), r.Signature());
  EXPECT_EQ(r.Signature(), "novafs|mount-failure|");
}

}  // namespace
