// Static persistence-pattern linter (src/analysis/lint.h):
//   - every rule has a positive and a negative hand-built trace;
//   - AnalyzeNoopFences classifies in-flight writes against the durable image;
//   - the reference FS lints clean on the whole trigger suite;
//   - every registered FS records a lintable trace for every trigger workload;
//   - seeded Table 1 PM bugs raise the finding count over the fixed baseline;
//   - no-op-fence pruning shrinks the crash-state count with identical reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/vfs/bug.h"
#include "src/workload/triggers.h"

namespace {

using analysis::AnalyzeNoopFences;
using analysis::LintFinding;
using analysis::LintOptions;
using analysis::LintRule;
using analysis::LintSeverity;
using analysis::LintTrace;
using pmem::MarkerKind;
using pmem::PmOp;
using pmem::PmOpKind;
using pmem::Trace;

// ---- Hand-built trace helpers. ----

PmOp Store(uint64_t off, size_t n, int32_t sys = -1, uint8_t fill = 1) {
  PmOp op;
  op.kind = PmOpKind::kStore;
  op.off = off;
  op.data.assign(n, fill);
  op.syscall_index = sys;
  return op;
}

PmOp NtStore(uint64_t off, size_t n, int32_t sys = -1, uint8_t fill = 1) {
  PmOp op;
  op.kind = PmOpKind::kNtStore;
  op.off = off;
  op.data.assign(n, fill);
  op.syscall_index = sys;
  return op;
}

PmOp Flush(uint64_t off, size_t n, int32_t sys = -1, uint8_t fill = 1) {
  PmOp op;
  op.kind = PmOpKind::kFlush;
  op.off = off;
  op.data.assign(n, fill);
  op.syscall_index = sys;
  return op;
}

PmOp Fence() {
  PmOp op;
  op.kind = PmOpKind::kFence;
  return op;
}

PmOp Marker(MarkerKind kind, int32_t index = -1) {
  PmOp op;
  op.kind = PmOpKind::kMarker;
  op.marker = kind;
  op.syscall_index = index;
  return op;
}

size_t CountRule(const std::vector<LintFinding>& findings, LintRule rule) {
  return std::count_if(findings.begin(), findings.end(),
                       [rule](const LintFinding& f) { return f.rule == rule; });
}

// ---- Rule metadata. ----

TEST(LintRules, StableUniqueIds) {
  const auto& rules = analysis::AllLintRules();
  EXPECT_EQ(rules.size(), 6u);
  std::vector<std::string> ids;
  for (LintRule rule : rules) {
    ids.emplace_back(analysis::LintRuleId(rule));
    EXPECT_NE(std::string(analysis::LintRuleDescription(rule)), "");
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(analysis::LintRuleId(LintRule::kDurabilityHole),
            std::string("durability-hole"));
}

// ---- durability-hole. ----

const LintFinding* FindRule(const std::vector<LintFinding>& findings,
                            LintRule rule) {
  for (const LintFinding& f : findings) {
    if (f.rule == rule) {
      return &f;
    }
  }
  return nullptr;
}

TEST(DurabilityHole, UnflushedStoreCaughtAtFence) {
  // A temporal store is volatile, so the fence also lints as a no-op fence;
  // the hole is the finding that matters here.
  Trace trace = {Store(0, 8, /*sys=*/3), Fence()};
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kDurabilityHole), 1u);
  const LintFinding& f = *FindRule(findings, LintRule::kDurabilityHole);
  EXPECT_EQ(f.severity, LintSeverity::kError);
  EXPECT_EQ(f.op_begin, 0u);
  EXPECT_EQ(f.op_end, 1u);  // the fence where the hole became definite
  EXPECT_EQ(f.syscall_index, 3);
  EXPECT_EQ(f.byte_off, 0u);
  EXPECT_EQ(f.byte_len, 8u);
}

TEST(DurabilityHole, FiresOncePerStore) {
  // The second fence must not re-report the same store.
  Trace trace = {Store(0, 8), Fence(), Fence()};
  auto findings = LintTrace(trace);
  EXPECT_EQ(CountRule(findings, LintRule::kDurabilityHole), 1u);
}

TEST(DurabilityHole, FlushedStoreIsClean) {
  Trace trace = {Store(0, 8), Flush(0, 64), Fence()};
  auto findings = LintTrace(trace);
  EXPECT_EQ(CountRule(findings, LintRule::kDurabilityHole), 0u);
  EXPECT_TRUE(findings.empty());
}

TEST(DurabilityHole, PartialFlushStillAHole) {
  // A store spanning two cache lines with only one of them flushed.
  Trace trace = {Store(32, 64), Flush(0, 64), Fence()};
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kDurabilityHole), 1u);
  EXPECT_NE(FindRule(findings, LintRule::kDurabilityHole)
                ->detail.find("1 cache line(s) unflushed"),
            std::string::npos);
}

// ---- redundant-flush. ----

TEST(RedundantFlush, SecondFlushOfCleanLine) {
  Trace trace = {Store(0, 8), Flush(0, 64), Flush(0, 64), Fence()};
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kRedundantFlush), 1u);
  EXPECT_EQ(findings[0].op_begin, 2u);
  EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
}

TEST(RedundantFlush, NeedsTemporalLogging) {
  // Without any recorded kStore, the cache is invisible and the rule is
  // suppressed (a replay-grade trace would flag everything as redundant).
  Trace trace = {NtStore(0, 64), Flush(0, 64), Fence()};
  auto findings = LintTrace(trace);
  EXPECT_EQ(CountRule(findings, LintRule::kRedundantFlush), 0u);
  EXPECT_TRUE(findings.empty());
}

TEST(RedundantFlush, DirtyLineIsNotRedundant) {
  Trace trace = {Store(0, 8), Flush(0, 64), Fence()};
  EXPECT_EQ(CountRule(LintTrace(trace), LintRule::kRedundantFlush), 0u);
}

// ---- unfenced-flush. ----

TEST(UnfencedFlush, SyscallReturnsBeforeFence) {
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), Store(0, 8, 0),
                 Flush(0, 64, 0), Marker(MarkerKind::kSyscallEnd, 0), Fence()};
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kUnfencedFlush), 1u);
  const LintFinding& f = findings[0];
  EXPECT_EQ(f.severity, LintSeverity::kError);
  EXPECT_EQ(f.op_begin, 2u);  // the flush
  EXPECT_EQ(f.op_end, 3u);    // the syscall-end marker
  EXPECT_EQ(f.syscall_index, 0);
}

TEST(UnfencedFlush, FenceBeforeReturnIsClean) {
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), Store(0, 8, 0),
                 Flush(0, 64, 0), Fence(), Marker(MarkerKind::kSyscallEnd, 0)};
  EXPECT_EQ(CountRule(LintTrace(trace), LintRule::kUnfencedFlush), 0u);
}

TEST(UnfencedFlush, GatedOnSynchronousGuarantee) {
  // fsync-semantics file systems may legally return with unfenced flushes.
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), Store(0, 8, 0),
                 Flush(0, 64, 0), Marker(MarkerKind::kSyscallEnd, 0), Fence()};
  LintOptions options;
  options.synchronous = false;
  EXPECT_EQ(CountRule(LintTrace(trace, options), LintRule::kUnfencedFlush), 0u);
}

// ---- noop-fence. ----

TEST(NoopFence, EmptyInflightSet) {
  Trace trace = {Fence()};
  auto findings = LintTrace(trace);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, LintRule::kNoopFence);
  EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
}

TEST(NoopFence, InflightWriteMakesFenceUseful) {
  Trace trace = {NtStore(0, 8), Fence()};
  EXPECT_TRUE(LintTrace(trace).empty());
}

// ---- torn-update. ----

TEST(TornUpdate, SmallStoreCrossingAtomicBoundary) {
  Trace trace = {Store(4, 8)};  // bytes [4,12): crosses the 8-byte boundary
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kTornUpdate), 1u);
  EXPECT_NE(findings[0].detail.find("8-byte atomicity"), std::string::npos);
}

TEST(TornUpdate, MediumNtStoreCrossingCacheLine) {
  Trace trace = {NtStore(56, 16)};  // bytes [56,72): crosses line 0 -> 1
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kTornUpdate), 1u);
  EXPECT_NE(findings[0].detail.find("cache-line"), std::string::npos);
}

TEST(TornUpdate, AlignedStoreIsClean) {
  Trace trace = {NtStore(0, 8), Fence()};
  EXPECT_EQ(CountRule(LintTrace(trace), LintRule::kTornUpdate), 0u);
}

TEST(TornUpdate, BulkDataExempt) {
  // Large writes tear by design; the replay engine's partial-data states
  // cover them.
  Trace trace = {NtStore(56, 4096), Fence()};
  EXPECT_EQ(CountRule(LintTrace(trace), LintRule::kTornUpdate), 0u);
}

// ---- checker-contamination. ----

TEST(CheckerContamination, WriteInsideCheckerWindow) {
  Trace trace = {Marker(MarkerKind::kCheckerBegin), NtStore(0, 8),
                 Marker(MarkerKind::kCheckerEnd)};
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kCheckerContamination), 1u);
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
}

TEST(CheckerContamination, WriteOutsideWindowIsClean) {
  Trace trace = {Marker(MarkerKind::kCheckerBegin),
                 Marker(MarkerKind::kCheckerEnd), NtStore(0, 8), Fence()};
  EXPECT_EQ(CountRule(LintTrace(trace), LintRule::kCheckerContamination), 0u);
}

// ---- AnalyzeNoopFences. ----

TEST(NoopFenceAnalysis, EmptyAndNonEmptyFences) {
  std::vector<uint8_t> base(128, 0);
  Trace trace = {Fence(), NtStore(0, 8, -1, 5), Fence()};
  auto info = AnalyzeNoopFences(trace, base);
  ASSERT_EQ(info.size(), 2u);
  EXPECT_TRUE(info[0].empty);
  EXPECT_FALSE(info[1].empty);
  EXPECT_TRUE(info[1].noop_writes.empty());  // the store changes the image
}

TEST(NoopFenceAnalysis, WriteMatchingDurableImageIsNoop) {
  std::vector<uint8_t> base(128, 0);
  // Op 0 rewrites zeros over zeros (no-op); op 1 differs.
  Trace trace = {NtStore(0, 8, -1, 0), NtStore(64, 8, -1, 5), Fence()};
  auto info = AnalyzeNoopFences(trace, base);
  ASSERT_EQ(info.size(), 1u);
  ASSERT_EQ(info[0].noop_writes.size(), 1u);
  EXPECT_EQ(info[0].noop_writes[0], 0u);
}

TEST(NoopFenceAnalysis, NoopOverlappingDifferingWriteIsKept) {
  std::vector<uint8_t> base(128, 0);
  // The zero rewrite overlaps a differing write: dropping it would change
  // the crash state where only the zero rewrite persists after the other.
  Trace trace = {NtStore(0, 8, -1, 0), NtStore(4, 8, -1, 5), Fence()};
  auto info = AnalyzeNoopFences(trace, base);
  ASSERT_EQ(info.size(), 1u);
  EXPECT_TRUE(info[0].noop_writes.empty());
}

TEST(NoopFenceAnalysis, DurableImageAdvancesAcrossFences) {
  std::vector<uint8_t> base(128, 0);
  // The same bytes written twice: differing at the first fence, a no-op at
  // the second (the first epoch made them durable).
  Trace trace = {NtStore(0, 8, -1, 5), Fence(), NtStore(0, 8, -1, 5), Fence()};
  auto info = AnalyzeNoopFences(trace, base);
  ASSERT_EQ(info.size(), 2u);
  EXPECT_TRUE(info[0].noop_writes.empty());
  ASSERT_EQ(info[1].noop_writes.size(), 1u);
  EXPECT_EQ(info[1].noop_writes[0], 2u);
}

// ---- Recorded traces: the reference FS is the known-clean baseline. ----

TEST(LintSweep, ReferenceFsLintsClean) {
  chipmunk::FsConfig reference = chipmunk::MakeReferenceConfig();
  for (const auto& w : trigger::AllTriggerWorkloads()) {
    auto rec = chipmunk::RecordTrace(reference, w);
    ASSERT_TRUE(rec.ok()) << w.name;
    LintOptions options;
    options.synchronous = rec->guarantees.synchronous;
    auto findings = LintTrace(rec->trace, options);
    EXPECT_TRUE(findings.empty())
        << w.name << ": " << findings.size() << " finding(s), first: "
        << findings[0].ToString();
  }
}

// Every registered FS must record a lintable trace for every trigger
// workload (findings are allowed — several fixed FSes carry benign
// anti-patterns — but recording and linting must succeed).
TEST(LintSweep, AllRegisteredFsRecordAndLint) {
  for (const std::string& name : chipmunk::RegisteredFsNames()) {
    auto config = chipmunk::MakeFsConfig(name);
    ASSERT_TRUE(config.ok()) << name;
    for (const auto& w : trigger::AllTriggerWorkloads()) {
      auto rec = chipmunk::RecordTrace(*config, w);
      ASSERT_TRUE(rec.ok()) << name << "/" << w.name;
      EXPECT_FALSE(rec->trace.empty()) << name << "/" << w.name;
      LintOptions options;
      options.synchronous = rec->guarantees.synchronous;
      LintTrace(rec->trace, options);  // must not crash or hang
    }
  }
}

// ---- Seeded Table 1 bugs raise the finding count over the fixed FS. ----

size_t TotalFindings(const chipmunk::FsConfig& config) {
  size_t total = 0;
  for (const auto& w : trigger::AllTriggerWorkloads()) {
    auto rec = chipmunk::RecordTrace(config, w);
    if (!rec.ok()) {
      continue;  // a seeded bug may legitimately break a workload
    }
    LintOptions options;
    options.synchronous = rec->guarantees.synchronous;
    total += LintTrace(rec->trace, options).size();
  }
  return total;
}

class SeededBugLint : public ::testing::TestWithParam<vfs::BugId> {};

TEST_P(SeededBugLint, SeededBugTripsMoreFindings) {
  const vfs::BugInfo* info = vfs::FindBug(GetParam());
  ASSERT_NE(info, nullptr);
  auto fixed = chipmunk::MakeFsConfig(info->fs);
  ASSERT_TRUE(fixed.ok());
  auto seeded = chipmunk::MakeBugConfig(GetParam());
  ASSERT_TRUE(seeded.ok());
  EXPECT_GT(TotalFindings(*seeded), TotalFindings(*fixed)) << info->fs;
}

// One PM-type bug per file system, chosen because its omission is visible
// statically (a missing flush/fence, not a logic error).
INSTANTIATE_TEST_SUITE_P(
    Table1, SeededBugLint,
    ::testing::Values(vfs::BugId::kNova2InodeFlushMissing,
                      vfs::BugId::kFortis9CsumNotFlushed,
                      vfs::BugId::kPmfs14WriteNotSynchronous,
                      vfs::BugId::kWinefs15WriteNotSynchronous,
                      vfs::BugId::kSplitfs24CommitByteNotFlushed),
    [](const ::testing::TestParamInfo<vfs::BugId>& info) {
      return std::string("bug") +
             std::to_string(static_cast<int>(info.param));
    });

// ---- No-op-fence pruning: fewer crash states, identical reports. ----

std::vector<std::string> SortedSignatures(const chipmunk::RunStats& stats) {
  std::vector<std::string> sigs;
  for (const auto& report : stats.reports) {
    sigs.push_back(report.Signature());
  }
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

TEST(NoopFencePruning, FewerCrashStatesSameReports) {
  auto config = chipmunk::MakeFsConfig("winefs");
  ASSERT_TRUE(config.ok());
  auto all = trigger::AllTriggerWorkloads();
  const workload::Workload* w =
      trigger::FindWorkload(all, "truncate-unaligned");
  ASSERT_NE(w, nullptr);

  chipmunk::HarnessOptions base_options;
  base_options.jobs = 1;

  chipmunk::HarnessOptions pruned_options = base_options;
  pruned_options.prune_noop_fences = true;

  chipmunk::Harness unpruned(*config, base_options);
  auto a = unpruned.TestWorkload(*w);
  ASSERT_TRUE(a.ok());

  chipmunk::Harness pruned(*config, pruned_options);
  auto b = pruned.TestWorkload(*w);
  ASSERT_TRUE(b.ok());

  // truncate-unaligned rewrites freed ranges with bytes already durable, so
  // pruning must strictly reduce the enumerated states here.
  EXPECT_LT(b->crash_states, a->crash_states);
  EXPECT_EQ(b->crash_points, a->crash_points);
  EXPECT_EQ(SortedSignatures(*b), SortedSignatures(*a));
}

TEST(NoopFencePruning, SeededBugReportsSurvivePruning) {
  // Pruning must not mask a real bug: the seeded winefs unaligned-in-place
  // bug reports identically with pruning on.
  auto config = chipmunk::MakeBugConfig(vfs::BugId::kWinefs20UnalignedInPlace);
  ASSERT_TRUE(config.ok());
  auto all = trigger::AllTriggerWorkloads();
  const workload::Workload* w =
      trigger::FindWorkload(all, trigger::TriggerFor(
                                     vfs::BugId::kWinefs20UnalignedInPlace));
  ASSERT_NE(w, nullptr);

  chipmunk::HarnessOptions options;
  options.jobs = 1;
  chipmunk::Harness unpruned(*config, options);
  auto a = unpruned.TestWorkload(*w);
  ASSERT_TRUE(a.ok());
  ASSERT_FALSE(a->reports.empty());

  options.prune_noop_fences = true;
  chipmunk::Harness pruned(*config, options);
  auto b = pruned.TestWorkload(*w);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(SortedSignatures(*b), SortedSignatures(*a));
  EXPECT_LE(b->crash_states, a->crash_states);
}

}  // namespace
