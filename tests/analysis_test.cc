// Static persistence-pattern linter (src/analysis/lint.h) and the
// happens-before durability analyzer (src/analysis/hb.h, invariants.h):
//   - every rule has a positive and a negative hand-built trace;
//   - AnalyzeNoopFences classifies in-flight writes against the durable image;
//   - BuildHb's durability intervals, epochs, and any-byte durability;
//   - the two HB lint rules and WITCHER-style invariant mining/checking;
//   - the invariant-set text round-trip and the --targeted suspect set;
//   - SARIF JsonEscape control/quote/backslash/UTF-8 behavior;
//   - the reference FS lints AND analyzes clean on the whole trigger suite;
//   - every registered FS records a lintable trace for every trigger workload;
//   - seeded Table 1 PM bugs raise the finding count over the fixed baseline,
//     both for the single-pass linter and the HB analyzer;
//   - no-op-fence pruning shrinks the crash-state count with identical reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/hb.h"
#include "src/analysis/invariants.h"
#include "src/analysis/lint.h"
#include "src/analysis/rules.h"
#include "src/analysis/sarif.h"
#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/vfs/bug.h"
#include "src/workload/triggers.h"

namespace {

using analysis::AnalyzeNoopFences;
using analysis::LintFinding;
using analysis::LintOptions;
using analysis::LintRule;
using analysis::LintSeverity;
using analysis::LintTrace;
using pmem::MarkerKind;
using pmem::PmOp;
using pmem::PmOpKind;
using pmem::Trace;

// ---- Hand-built trace helpers. ----

PmOp Store(uint64_t off, size_t n, int32_t sys = -1, uint8_t fill = 1) {
  PmOp op;
  op.kind = PmOpKind::kStore;
  op.off = off;
  op.data.assign(n, fill);
  op.syscall_index = sys;
  return op;
}

PmOp NtStore(uint64_t off, size_t n, int32_t sys = -1, uint8_t fill = 1) {
  PmOp op;
  op.kind = PmOpKind::kNtStore;
  op.off = off;
  op.data.assign(n, fill);
  op.syscall_index = sys;
  return op;
}

PmOp Flush(uint64_t off, size_t n, int32_t sys = -1, uint8_t fill = 1) {
  PmOp op;
  op.kind = PmOpKind::kFlush;
  op.off = off;
  op.data.assign(n, fill);
  op.syscall_index = sys;
  return op;
}

PmOp Fence() {
  PmOp op;
  op.kind = PmOpKind::kFence;
  return op;
}

PmOp Marker(MarkerKind kind, int32_t index = -1) {
  PmOp op;
  op.kind = PmOpKind::kMarker;
  op.marker = kind;
  op.syscall_index = index;
  return op;
}

size_t CountRule(const std::vector<LintFinding>& findings, LintRule rule) {
  return std::count_if(findings.begin(), findings.end(),
                       [rule](const LintFinding& f) { return f.rule == rule; });
}

// ---- Rule metadata. ----

TEST(LintRules, StableUniqueIds) {
  const auto& rules = analysis::AllLintRules();
  EXPECT_EQ(rules.size(), 9u);  // 6 single-pass + 3 happens-before rules
  std::vector<std::string> ids;
  for (LintRule rule : rules) {
    ids.emplace_back(analysis::LintRuleId(rule));
    EXPECT_NE(std::string(analysis::LintRuleDescription(rule)), "");
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(analysis::LintRuleId(LintRule::kDurabilityHole),
            std::string("durability-hole"));
  EXPECT_EQ(analysis::LintRuleId(LintRule::kCrossSyscallRace),
            std::string("cross-syscall-durability-race"));
  EXPECT_EQ(analysis::LintRuleId(LintRule::kCommitInversion),
            std::string("commit-before-payload"));
  EXPECT_EQ(analysis::LintRuleId(LintRule::kInvariantViolation),
            std::string("ordering-invariant-violation"));
}

TEST(LintRules, TableLookupByIdAndEnum) {
  // Every table row resolves back to itself by id; unknown ids do not.
  for (const analysis::RuleInfo& info : analysis::AllRuleInfos()) {
    const analysis::RuleInfo* by_id = analysis::FindRuleById(info.id);
    ASSERT_NE(by_id, nullptr) << info.id;
    EXPECT_EQ(by_id->rule, info.rule);
    EXPECT_EQ(&analysis::FindRule(info.rule), by_id);
  }
  EXPECT_EQ(analysis::FindRuleById("no-such-rule"), nullptr);
  EXPECT_EQ(analysis::FindRuleById(""), nullptr);
}

// ---- durability-hole. ----

const LintFinding* FindRule(const std::vector<LintFinding>& findings,
                            LintRule rule) {
  for (const LintFinding& f : findings) {
    if (f.rule == rule) {
      return &f;
    }
  }
  return nullptr;
}

TEST(DurabilityHole, UnflushedStoreCaughtAtFence) {
  // A temporal store is volatile, so the fence also lints as a no-op fence;
  // the hole is the finding that matters here.
  Trace trace = {Store(0, 8, /*sys=*/3), Fence()};
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kDurabilityHole), 1u);
  const LintFinding& f = *FindRule(findings, LintRule::kDurabilityHole);
  EXPECT_EQ(f.severity, LintSeverity::kError);
  EXPECT_EQ(f.op_begin, 0u);
  EXPECT_EQ(f.op_end, 1u);  // the fence where the hole became definite
  EXPECT_EQ(f.syscall_index, 3);
  EXPECT_EQ(f.byte_off, 0u);
  EXPECT_EQ(f.byte_len, 8u);
}

TEST(DurabilityHole, FiresOncePerStore) {
  // The second fence must not re-report the same store.
  Trace trace = {Store(0, 8), Fence(), Fence()};
  auto findings = LintTrace(trace);
  EXPECT_EQ(CountRule(findings, LintRule::kDurabilityHole), 1u);
}

TEST(DurabilityHole, FlushedStoreIsClean) {
  Trace trace = {Store(0, 8), Flush(0, 64), Fence()};
  auto findings = LintTrace(trace);
  EXPECT_EQ(CountRule(findings, LintRule::kDurabilityHole), 0u);
  EXPECT_TRUE(findings.empty());
}

TEST(DurabilityHole, PartialFlushStillAHole) {
  // A store spanning two cache lines with only one of them flushed.
  Trace trace = {Store(32, 64), Flush(0, 64), Fence()};
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kDurabilityHole), 1u);
  EXPECT_NE(FindRule(findings, LintRule::kDurabilityHole)
                ->detail.find("1 cache line(s) unflushed"),
            std::string::npos);
}

// ---- redundant-flush. ----

TEST(RedundantFlush, SecondFlushOfCleanLine) {
  Trace trace = {Store(0, 8), Flush(0, 64), Flush(0, 64), Fence()};
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kRedundantFlush), 1u);
  EXPECT_EQ(findings[0].op_begin, 2u);
  EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
}

TEST(RedundantFlush, NeedsTemporalLogging) {
  // Without any recorded kStore, the cache is invisible and the rule is
  // suppressed (a replay-grade trace would flag everything as redundant).
  Trace trace = {NtStore(0, 64), Flush(0, 64), Fence()};
  auto findings = LintTrace(trace);
  EXPECT_EQ(CountRule(findings, LintRule::kRedundantFlush), 0u);
  EXPECT_TRUE(findings.empty());
}

TEST(RedundantFlush, DirtyLineIsNotRedundant) {
  Trace trace = {Store(0, 8), Flush(0, 64), Fence()};
  EXPECT_EQ(CountRule(LintTrace(trace), LintRule::kRedundantFlush), 0u);
}

// ---- unfenced-flush. ----

TEST(UnfencedFlush, SyscallReturnsBeforeFence) {
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), Store(0, 8, 0),
                 Flush(0, 64, 0), Marker(MarkerKind::kSyscallEnd, 0), Fence()};
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kUnfencedFlush), 1u);
  const LintFinding& f = findings[0];
  EXPECT_EQ(f.severity, LintSeverity::kError);
  EXPECT_EQ(f.op_begin, 2u);  // the flush
  EXPECT_EQ(f.op_end, 3u);    // the syscall-end marker
  EXPECT_EQ(f.syscall_index, 0);
}

TEST(UnfencedFlush, FenceBeforeReturnIsClean) {
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), Store(0, 8, 0),
                 Flush(0, 64, 0), Fence(), Marker(MarkerKind::kSyscallEnd, 0)};
  EXPECT_EQ(CountRule(LintTrace(trace), LintRule::kUnfencedFlush), 0u);
}

TEST(UnfencedFlush, GatedOnSynchronousGuarantee) {
  // fsync-semantics file systems may legally return with unfenced flushes.
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), Store(0, 8, 0),
                 Flush(0, 64, 0), Marker(MarkerKind::kSyscallEnd, 0), Fence()};
  LintOptions options;
  options.synchronous = false;
  EXPECT_EQ(CountRule(LintTrace(trace, options), LintRule::kUnfencedFlush), 0u);
}

// ---- noop-fence. ----

TEST(NoopFence, EmptyInflightSet) {
  Trace trace = {Fence()};
  auto findings = LintTrace(trace);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, LintRule::kNoopFence);
  EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
}

TEST(NoopFence, InflightWriteMakesFenceUseful) {
  Trace trace = {NtStore(0, 8), Fence()};
  EXPECT_TRUE(LintTrace(trace).empty());
}

// ---- torn-update. ----

TEST(TornUpdate, SmallStoreCrossingAtomicBoundary) {
  Trace trace = {Store(4, 8)};  // bytes [4,12): crosses the 8-byte boundary
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kTornUpdate), 1u);
  EXPECT_NE(findings[0].detail.find("8-byte atomicity"), std::string::npos);
}

TEST(TornUpdate, MediumNtStoreCrossingCacheLine) {
  Trace trace = {NtStore(56, 16)};  // bytes [56,72): crosses line 0 -> 1
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kTornUpdate), 1u);
  EXPECT_NE(findings[0].detail.find("cache-line"), std::string::npos);
}

TEST(TornUpdate, AlignedStoreIsClean) {
  Trace trace = {NtStore(0, 8), Fence()};
  EXPECT_EQ(CountRule(LintTrace(trace), LintRule::kTornUpdate), 0u);
}

TEST(TornUpdate, BulkDataExempt) {
  // Large writes tear by design; the replay engine's partial-data states
  // cover them.
  Trace trace = {NtStore(56, 4096), Fence()};
  EXPECT_EQ(CountRule(LintTrace(trace), LintRule::kTornUpdate), 0u);
}

// ---- checker-contamination. ----

TEST(CheckerContamination, WriteInsideCheckerWindow) {
  Trace trace = {Marker(MarkerKind::kCheckerBegin), NtStore(0, 8),
                 Marker(MarkerKind::kCheckerEnd)};
  auto findings = LintTrace(trace);
  ASSERT_EQ(CountRule(findings, LintRule::kCheckerContamination), 1u);
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
}

TEST(CheckerContamination, WriteOutsideWindowIsClean) {
  Trace trace = {Marker(MarkerKind::kCheckerBegin),
                 Marker(MarkerKind::kCheckerEnd), NtStore(0, 8), Fence()};
  EXPECT_EQ(CountRule(LintTrace(trace), LintRule::kCheckerContamination), 0u);
}

// ---- AnalyzeNoopFences. ----

TEST(NoopFenceAnalysis, EmptyAndNonEmptyFences) {
  std::vector<uint8_t> base(128, 0);
  Trace trace = {Fence(), NtStore(0, 8, -1, 5), Fence()};
  auto info = AnalyzeNoopFences(trace, base);
  ASSERT_EQ(info.size(), 2u);
  EXPECT_TRUE(info[0].empty);
  EXPECT_FALSE(info[1].empty);
  EXPECT_TRUE(info[1].noop_writes.empty());  // the store changes the image
}

TEST(NoopFenceAnalysis, WriteMatchingDurableImageIsNoop) {
  std::vector<uint8_t> base(128, 0);
  // Op 0 rewrites zeros over zeros (no-op); op 1 differs.
  Trace trace = {NtStore(0, 8, -1, 0), NtStore(64, 8, -1, 5), Fence()};
  auto info = AnalyzeNoopFences(trace, base);
  ASSERT_EQ(info.size(), 1u);
  ASSERT_EQ(info[0].noop_writes.size(), 1u);
  EXPECT_EQ(info[0].noop_writes[0], 0u);
}

TEST(NoopFenceAnalysis, NoopOverlappingDifferingWriteIsKept) {
  std::vector<uint8_t> base(128, 0);
  // The zero rewrite overlaps a differing write: dropping it would change
  // the crash state where only the zero rewrite persists after the other.
  Trace trace = {NtStore(0, 8, -1, 0), NtStore(4, 8, -1, 5), Fence()};
  auto info = AnalyzeNoopFences(trace, base);
  ASSERT_EQ(info.size(), 1u);
  EXPECT_TRUE(info[0].noop_writes.empty());
}

TEST(NoopFenceAnalysis, DurableImageAdvancesAcrossFences) {
  std::vector<uint8_t> base(128, 0);
  // The same bytes written twice: differing at the first fence, a no-op at
  // the second (the first epoch made them durable).
  Trace trace = {NtStore(0, 8, -1, 5), Fence(), NtStore(0, 8, -1, 5), Fence()};
  auto info = AnalyzeNoopFences(trace, base);
  ASSERT_EQ(info.size(), 2u);
  EXPECT_TRUE(info[0].noop_writes.empty());
  ASSERT_EQ(info[1].noop_writes.size(), 1u);
  EXPECT_EQ(info[1].noop_writes[0], 2u);
}

// ---- Recorded traces: the reference FS is the known-clean baseline. ----

TEST(LintSweep, ReferenceFsLintsClean) {
  chipmunk::FsConfig reference = chipmunk::MakeReferenceConfig();
  for (const auto& w : trigger::AllTriggerWorkloads()) {
    auto rec = chipmunk::RecordTrace(reference, w);
    ASSERT_TRUE(rec.ok()) << w.name;
    LintOptions options;
    options.synchronous = rec->guarantees.synchronous;
    auto findings = LintTrace(rec->trace, options);
    EXPECT_TRUE(findings.empty())
        << w.name << ": " << findings.size() << " finding(s), first: "
        << findings[0].ToString();
  }
}

// Every registered FS must record a lintable trace for every trigger
// workload (findings are allowed — several fixed FSes carry benign
// anti-patterns — but recording and linting must succeed).
TEST(LintSweep, AllRegisteredFsRecordAndLint) {
  for (const std::string& name : chipmunk::RegisteredFsNames()) {
    auto config = chipmunk::MakeFsConfig(name);
    ASSERT_TRUE(config.ok()) << name;
    for (const auto& w : trigger::AllTriggerWorkloads()) {
      auto rec = chipmunk::RecordTrace(*config, w);
      ASSERT_TRUE(rec.ok()) << name << "/" << w.name;
      EXPECT_FALSE(rec->trace.empty()) << name << "/" << w.name;
      LintOptions options;
      options.synchronous = rec->guarantees.synchronous;
      LintTrace(rec->trace, options);  // must not crash or hang
    }
  }
}

// ---- Seeded Table 1 bugs raise the finding count over the fixed FS. ----

size_t TotalFindings(const chipmunk::FsConfig& config) {
  size_t total = 0;
  for (const auto& w : trigger::AllTriggerWorkloads()) {
    auto rec = chipmunk::RecordTrace(config, w);
    if (!rec.ok()) {
      continue;  // a seeded bug may legitimately break a workload
    }
    LintOptions options;
    options.synchronous = rec->guarantees.synchronous;
    total += LintTrace(rec->trace, options).size();
  }
  return total;
}

class SeededBugLint : public ::testing::TestWithParam<vfs::BugId> {};

TEST_P(SeededBugLint, SeededBugTripsMoreFindings) {
  const vfs::BugInfo* info = vfs::FindBug(GetParam());
  ASSERT_NE(info, nullptr);
  auto fixed = chipmunk::MakeFsConfig(info->fs);
  ASSERT_TRUE(fixed.ok());
  auto seeded = chipmunk::MakeBugConfig(GetParam());
  ASSERT_TRUE(seeded.ok());
  EXPECT_GT(TotalFindings(*seeded), TotalFindings(*fixed)) << info->fs;
}

// One PM-type bug per file system, chosen because its omission is visible
// statically (a missing flush/fence, not a logic error).
INSTANTIATE_TEST_SUITE_P(
    Table1, SeededBugLint,
    ::testing::Values(vfs::BugId::kNova2InodeFlushMissing,
                      vfs::BugId::kFortis9CsumNotFlushed,
                      vfs::BugId::kPmfs14WriteNotSynchronous,
                      vfs::BugId::kWinefs15WriteNotSynchronous,
                      vfs::BugId::kSplitfs24CommitByteNotFlushed),
    [](const ::testing::TestParamInfo<vfs::BugId>& info) {
      return std::string("bug") +
             std::to_string(static_cast<int>(info.param));
    });

// ---- No-op-fence pruning: fewer crash states, identical reports. ----

std::vector<std::string> SortedSignatures(const chipmunk::RunStats& stats) {
  std::vector<std::string> sigs;
  for (const auto& report : stats.reports) {
    sigs.push_back(report.Signature());
  }
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

TEST(NoopFencePruning, FewerCrashStatesSameReports) {
  auto config = chipmunk::MakeFsConfig("winefs");
  ASSERT_TRUE(config.ok());
  auto all = trigger::AllTriggerWorkloads();
  const workload::Workload* w =
      trigger::FindWorkload(all, "truncate-unaligned");
  ASSERT_NE(w, nullptr);

  chipmunk::HarnessOptions base_options;
  base_options.jobs = 1;

  chipmunk::HarnessOptions pruned_options = base_options;
  pruned_options.prune_noop_fences = true;

  chipmunk::Harness unpruned(*config, base_options);
  auto a = unpruned.TestWorkload(*w);
  ASSERT_TRUE(a.ok());

  chipmunk::Harness pruned(*config, pruned_options);
  auto b = pruned.TestWorkload(*w);
  ASSERT_TRUE(b.ok());

  // truncate-unaligned rewrites freed ranges with bytes already durable, so
  // pruning must strictly reduce the enumerated states here.
  EXPECT_LT(b->crash_states, a->crash_states);
  EXPECT_EQ(b->crash_points, a->crash_points);
  EXPECT_EQ(SortedSignatures(*b), SortedSignatures(*a));
}

TEST(NoopFencePruning, SeededBugReportsSurvivePruning) {
  // Pruning must not mask a real bug: the seeded winefs unaligned-in-place
  // bug reports identically with pruning on.
  auto config = chipmunk::MakeBugConfig(vfs::BugId::kWinefs20UnalignedInPlace);
  ASSERT_TRUE(config.ok());
  auto all = trigger::AllTriggerWorkloads();
  const workload::Workload* w =
      trigger::FindWorkload(all, trigger::TriggerFor(
                                     vfs::BugId::kWinefs20UnalignedInPlace));
  ASSERT_NE(w, nullptr);

  chipmunk::HarnessOptions options;
  options.jobs = 1;
  chipmunk::Harness unpruned(*config, options);
  auto a = unpruned.TestWorkload(*w);
  ASSERT_TRUE(a.ok());
  ASSERT_FALSE(a->reports.empty());

  options.prune_noop_fences = true;
  chipmunk::Harness pruned(*config, options);
  auto b = pruned.TestWorkload(*w);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(SortedSignatures(*b), SortedSignatures(*a));
  EXPECT_LE(b->crash_states, a->crash_states);
}

// ---- Happens-before durability model (src/analysis/hb.h). ----

using analysis::BuildHb;
using analysis::DurabilityInterval;
using analysis::HbAnalysis;
using analysis::HbLint;
using analysis::kNeverDurable;
using analysis::kNoOp;

TEST(HbModel, NtStoreDurableAtNextFence) {
  Trace trace = {NtStore(0, 8), Fence()};
  HbAnalysis hb = BuildHb(trace);
  EXPECT_EQ(hb.epochs, 1u);
  ASSERT_EQ(hb.fence_ops.size(), 1u);
  EXPECT_EQ(hb.fence_ops[0], 1u);
  ASSERT_EQ(hb.intervals.size(), 1u);
  const DurabilityInterval& iv = hb.intervals[0];
  EXPECT_EQ(iv.op_index, 0u);
  EXPECT_EQ(iv.issue_epoch, 0u);
  EXPECT_EQ(iv.media_op, 0u);   // an NT store is its own media op
  EXPECT_EQ(iv.durable_epoch, 0u);
  EXPECT_TRUE(iv.atomic8);
  EXPECT_FALSE(hb.temporal_logged);
}

TEST(HbModel, TemporalStoreCarriedByFlush) {
  Trace trace = {Store(0, 8), Flush(0, 64), Fence()};
  HbAnalysis hb = BuildHb(trace);
  EXPECT_TRUE(hb.temporal_logged);
  ASSERT_EQ(hb.intervals.size(), 1u);
  EXPECT_EQ(hb.intervals[0].media_op, 1u);  // the carrying flush
  EXPECT_EQ(hb.intervals[0].durable_epoch, 0u);
}

TEST(HbModel, UnflushedTemporalStoreNeverDurable) {
  Trace trace = {Store(0, 8), Fence()};
  HbAnalysis hb = BuildHb(trace);
  ASSERT_EQ(hb.intervals.size(), 1u);
  EXPECT_EQ(hb.intervals[0].media_op, kNoOp);
  EXPECT_EQ(hb.intervals[0].durable_epoch, kNeverDurable);
}

TEST(HbModel, AnyByteDurability) {
  // A two-cache-line store with only its first line flushed is durable at the
  // fence (any-byte semantics): real FSes legitimately leave dead tail bytes
  // of a structure unflushed.
  Trace trace = {Store(32, 64), Flush(0, 64), Fence()};
  HbAnalysis hb = BuildHb(trace);
  ASSERT_EQ(hb.intervals.size(), 1u);
  EXPECT_EQ(hb.intervals[0].durable_epoch, 0u);
}

TEST(HbModel, Atomic8Classification) {
  Trace trace = {Store(0, 8), Store(4, 8), Store(0, 16), Store(8, 4), Fence()};
  HbAnalysis hb = BuildHb(trace);
  ASSERT_EQ(hb.intervals.size(), 4u);
  EXPECT_TRUE(hb.intervals[0].atomic8);   // aligned 8 bytes
  EXPECT_FALSE(hb.intervals[1].atomic8);  // crosses the 8-byte boundary
  EXPECT_FALSE(hb.intervals[2].atomic8);  // too large
  EXPECT_TRUE(hb.intervals[3].atomic8);   // 4 bytes inside one unit
}

TEST(HbModel, NonTemporalFlushBecomesInterval) {
  // Without temporal logging the flush is the only record of the update it
  // carries, so it is its own interval.
  Trace trace = {Flush(0, 64), Fence()};
  HbAnalysis hb = BuildHb(trace);
  EXPECT_FALSE(hb.temporal_logged);
  ASSERT_EQ(hb.intervals.size(), 1u);
  EXPECT_EQ(hb.intervals[0].media_op, 0u);
  EXPECT_EQ(hb.intervals[0].durable_epoch, 0u);
}

TEST(HbModel, SyscallSpansRecorded) {
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), NtStore(0, 8, 0),
                 Fence(), Marker(MarkerKind::kSyscallEnd, 0)};
  HbAnalysis hb = BuildHb(trace);
  ASSERT_EQ(hb.syscalls.size(), 1u);
  EXPECT_EQ(hb.syscalls[0].syscall_index, 0);
  EXPECT_EQ(hb.syscalls[0].end_op, 3u);
  EXPECT_EQ(hb.syscalls[0].end_epoch, 1u);
}

TEST(HbModel, CheckerWindowExcluded) {
  Trace trace = {Marker(MarkerKind::kCheckerBegin), NtStore(0, 8),
                 Marker(MarkerKind::kCheckerEnd), Fence()};
  HbAnalysis hb = BuildHb(trace);
  EXPECT_TRUE(hb.intervals.empty());
  EXPECT_EQ(hb.epochs, 1u);
}

TEST(HbModel, DurableBeforeIssueOrdering) {
  Trace trace = {NtStore(0, 8), Fence(), NtStore(4096, 8), Fence()};
  HbAnalysis hb = BuildHb(trace);
  ASSERT_EQ(hb.intervals.size(), 2u);
  EXPECT_TRUE(hb.intervals[0].DurableBeforeIssue(hb.intervals[1]));
  EXPECT_FALSE(hb.intervals[1].DurableBeforeIssue(hb.intervals[0]));
}

// ---- cross-syscall-durability-race. ----

TEST(CrossSyscallRace, NoByteDurableAtSyscallReturn) {
  // The NT store only becomes durable at the post-return fence.
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), NtStore(0, 8, 0),
                 Marker(MarkerKind::kSyscallEnd, 0), Fence()};
  auto findings = HbLint(BuildHb(trace));
  ASSERT_EQ(CountRule(findings, LintRule::kCrossSyscallRace), 1u);
  const LintFinding& f = *FindRule(findings, LintRule::kCrossSyscallRace);
  EXPECT_EQ(f.severity, LintSeverity::kError);
  EXPECT_EQ(f.op_begin, 1u);
  EXPECT_EQ(f.op_end, 2u);
  EXPECT_EQ(f.syscall_index, 0);
}

TEST(CrossSyscallRace, OneFindingPerSyscallManyWrites) {
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), NtStore(0, 8, 0),
                 NtStore(64, 8, 0), Marker(MarkerKind::kSyscallEnd, 0),
                 Fence()};
  auto findings = HbLint(BuildHb(trace));
  ASSERT_EQ(CountRule(findings, LintRule::kCrossSyscallRace), 1u);
  EXPECT_NE(FindRule(findings, LintRule::kCrossSyscallRace)
                ->detail.find("2 write(s)"),
            std::string::npos);
}

TEST(CrossSyscallRace, FencedSyscallIsClean) {
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), NtStore(0, 8, 0),
                 Fence(), Marker(MarkerKind::kSyscallEnd, 0)};
  EXPECT_TRUE(HbLint(BuildHb(trace)).empty());
}

TEST(CrossSyscallRace, GatedOnSynchronousGuarantee) {
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), NtStore(0, 8, 0),
                 Marker(MarkerKind::kSyscallEnd, 0), Fence()};
  LintOptions options;
  options.synchronous = false;
  EXPECT_TRUE(HbLint(BuildHb(trace), options).empty());
}

// ---- commit-before-payload. ----

TEST(CommitInversion, CommitDurableBeforePayload) {
  // The 8-byte commit is flushed and fenced in epoch 0; the 16-byte payload
  // issued before it only becomes durable in epoch 1.
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0),
                 Store(128, 16, 0),  // payload
                 Store(0, 8, 0),     // commit
                 Flush(0, 64, 0),
                 Fence(),
                 Flush(128, 64, 0),
                 Fence(),
                 Marker(MarkerKind::kSyscallEnd, 0)};
  auto findings = HbLint(BuildHb(trace));
  ASSERT_EQ(CountRule(findings, LintRule::kCommitInversion), 1u);
  const LintFinding& f = *FindRule(findings, LintRule::kCommitInversion);
  EXPECT_EQ(f.op_begin, 1u);  // the payload
  EXPECT_EQ(f.op_end, 2u);    // the commit
  EXPECT_NE(f.detail.find("durable at epoch 0"), std::string::npos);
}

TEST(CommitInversion, PayloadNeverDurable) {
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), Store(128, 16, 0),
                 Store(0, 8, 0), Flush(0, 64, 0), Fence(),
                 Marker(MarkerKind::kSyscallEnd, 0)};
  auto findings = HbLint(BuildHb(trace));
  ASSERT_EQ(CountRule(findings, LintRule::kCommitInversion), 1u);
  EXPECT_NE(FindRule(findings, LintRule::kCommitInversion)
                ->detail.find("payload never durable"),
            std::string::npos);
}

TEST(CommitInversion, OrderedCommitIsClean) {
  // Payload durable in epoch 0, commit durable in epoch 1: correct ordering.
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), Store(128, 16, 0),
                 Flush(128, 64, 0), Fence(), Store(0, 8, 0), Flush(0, 64, 0),
                 Fence(), Marker(MarkerKind::kSyscallEnd, 0)};
  EXPECT_TRUE(HbLint(BuildHb(trace)).empty());
}

TEST(CommitInversion, NonAtomicCommitIgnored) {
  // A 16-byte "commit" can tear, so the rule does not treat it as one.
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), Store(128, 16, 0),
                 Store(0, 16, 0), Flush(0, 64, 0), Fence(), Flush(128, 64, 0),
                 Fence(), Marker(MarkerKind::kSyscallEnd, 0)};
  EXPECT_EQ(CountRule(HbLint(BuildHb(trace)), LintRule::kCommitInversion), 0u);
}

// ---- Invariant mining and checking (src/analysis/invariants.h). ----

using analysis::CheckInvariants;
using analysis::InvariantMiner;
using analysis::InvariantSet;

// Region 0 durable before region 64 (byte 4096) is issued.
Trace SupportingTrace() {
  return {NtStore(0, 8), Fence(), NtStore(4096, 8), Fence()};
}

// Both regions issued in the same epoch: the ordering does not hold.
Trace ViolatingTrace() {
  return {NtStore(0, 8), NtStore(4096, 8), Fence()};
}

TEST(InvariantMining, SupportedPairBecomesInvariant) {
  InvariantMiner miner;
  miner.AddTrace(BuildHb(SupportingTrace()));
  InvariantSet set = miner.Mine("testfs");
  EXPECT_EQ(set.fs, "testfs");
  EXPECT_EQ(set.traces, 1u);
  ASSERT_EQ(set.invariants.size(), 1u);
  EXPECT_EQ(set.invariants[0].region_a, 0u);
  EXPECT_EQ(set.invariants[0].region_b, 64u);
  EXPECT_EQ(set.invariants[0].support, 1u);
  EXPECT_NE(set.Find(0, 64), nullptr);
  EXPECT_EQ(set.Find(64, 0), nullptr);
}

TEST(InvariantMining, ContradictionVetoes) {
  InvariantMiner miner;
  miner.AddTrace(BuildHb(SupportingTrace()));
  miner.AddTrace(BuildHb(ViolatingTrace()));
  EXPECT_TRUE(miner.Mine("testfs").invariants.empty());
}

TEST(InvariantMining, MinSupportThreshold) {
  InvariantMiner miner(64, /*min_support=*/2);
  miner.AddTrace(BuildHb(SupportingTrace()));
  EXPECT_TRUE(miner.Mine("testfs").invariants.empty());
  miner.AddTrace(BuildHb(SupportingTrace()));
  InvariantSet set = miner.Mine("testfs");
  ASSERT_EQ(set.invariants.size(), 1u);
  EXPECT_EQ(set.invariants[0].support, 2u);
}

TEST(InvariantMining, OversizeTraceSkipped) {
  Trace trace;
  for (size_t i = 0; i <= InvariantMiner::kMaxIntervals; ++i) {
    trace.push_back(NtStore(i * 64, 8));
  }
  trace.push_back(Fence());
  InvariantMiner miner;
  miner.AddTrace(BuildHb(trace));
  EXPECT_EQ(miner.traces(), 0u);
  EXPECT_EQ(miner.skipped(), 1u);
}

TEST(InvariantChecking, ViolationFlaggedOncePerInvariant) {
  InvariantMiner miner;
  miner.AddTrace(BuildHb(SupportingTrace()));
  InvariantSet set = miner.Mine("testfs");
  // Two same-region occurrences of the violation must fold into one finding.
  Trace trace = {NtStore(0, 8), NtStore(4096, 8), NtStore(4100, 8), Fence()};
  auto findings = CheckInvariants(BuildHb(trace), set);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, LintRule::kInvariantViolation);
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
  EXPECT_EQ(findings[0].op_begin, 0u);
  EXPECT_EQ(findings[0].op_end, 1u);
  EXPECT_NE(findings[0].detail.find("region 0 not durable before region 64"),
            std::string::npos);
}

TEST(InvariantMining, ReversedCorpusTraceVetoes) {
  // Strict contradiction: a corpus trace that writes both regions with B
  // issued before A ever becomes durable vetoes (A, B), even though there
  // is no program-order (A, B) occurrence to inspect.
  InvariantMiner miner;
  miner.AddTrace(BuildHb(SupportingTrace()));
  miner.AddTrace(BuildHb({NtStore(4096, 8), NtStore(0, 8), Fence()}));
  EXPECT_TRUE(miner.Mine("testfs").invariants.empty());
}

TEST(InvariantMining, SingleRegionTraceIsNeutral) {
  // A trace that writes only B says nothing about B's ordering discipline
  // relative to regions it never touches: no veto.
  InvariantMiner miner;
  miner.AddTrace(BuildHb(SupportingTrace()));
  miner.AddTrace(BuildHb({NtStore(4096, 8), Fence()}));
  InvariantSet set = miner.Mine("testfs");
  ASSERT_EQ(set.invariants.size(), 1u);
  EXPECT_EQ(set.invariants[0].support, 1u);
}

TEST(InvariantChecking, ReversedOrderFlagged) {
  InvariantMiner miner;
  miner.AddTrace(BuildHb(SupportingTrace()));
  InvariantSet set = miner.Mine("testfs");
  // The buggy trace issues B first and A only afterwards — there is no
  // program-order (A, B) pair at all, but the B-issue still lacked a
  // durable A byte, which is exactly the invariant's claim.
  Trace trace = {NtStore(4096, 8), Fence(), NtStore(0, 8), Fence()};
  auto findings = CheckInvariants(BuildHb(trace), set);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, LintRule::kInvariantViolation);
  EXPECT_EQ(findings[0].op_begin, 2u);  // the late A write takes the blame
  EXPECT_EQ(findings[0].op_end, 0u);    // the B-issue it should have preceded
  EXPECT_NE(findings[0].detail.find("region 0 not durable before region 64"),
            std::string::npos);
}

TEST(InvariantChecking, NeverDurableFirstWriteFlagged) {
  InvariantMiner miner;
  miner.AddTrace(BuildHb(SupportingTrace()));
  InvariantSet set = miner.Mine("testfs");
  // A is written but never flushed: no B-issue ever sees a durable A byte,
  // the missing-flush shape of the seeded Table 1 bugs.
  Trace trace = {Store(0, 8, 0), NtStore(4096, 8), Fence()};
  auto findings = CheckInvariants(BuildHb(trace), set);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].op_begin, 0u);  // the unflushed A write
  EXPECT_EQ(findings[0].op_end, 1u);    // the B-issue
}

TEST(InvariantChecking, UntouchedFirstRegionIsNeutral) {
  InvariantMiner miner;
  miner.AddTrace(BuildHb(SupportingTrace()));
  InvariantSet set = miner.Mine("testfs");
  // The checked trace never writes region A: nothing to order, no finding.
  Trace trace = {NtStore(4096, 8), Fence()};
  EXPECT_TRUE(CheckInvariants(BuildHb(trace), set).empty());
}

TEST(InvariantChecking, MiningCorpusSelfChecksClean) {
  // By construction: a pair violated anywhere in the corpus is vetoed, so the
  // corpus can never violate its own mined set.
  std::vector<Trace> corpus = {
      SupportingTrace(),
      {NtStore(0, 8), NtStore(64, 8), Fence(), NtStore(4096, 8), Fence()},
  };
  InvariantMiner miner;
  for (const Trace& t : corpus) {
    miner.AddTrace(BuildHb(t));
  }
  InvariantSet set = miner.Mine("testfs");
  EXPECT_FALSE(set.invariants.empty());
  for (const Trace& t : corpus) {
    EXPECT_TRUE(CheckInvariants(BuildHb(t), set).empty());
  }
}

TEST(InvariantSerialization, RoundTrip) {
  InvariantMiner miner;
  miner.AddTrace(BuildHb(SupportingTrace()));
  InvariantSet set = miner.Mine("testfs");
  const std::string text = analysis::SerializeInvariants(set);
  EXPECT_NE(text.find("# chipmunk-invariants v1"), std::string::npos);
  auto parsed = analysis::ParseInvariants(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->fs, set.fs);
  EXPECT_EQ(parsed->granularity, set.granularity);
  EXPECT_EQ(parsed->min_support, set.min_support);
  EXPECT_EQ(parsed->traces, set.traces);
  ASSERT_EQ(parsed->invariants.size(), set.invariants.size());
  EXPECT_EQ(parsed->invariants[0].region_a, set.invariants[0].region_a);
  EXPECT_EQ(parsed->invariants[0].region_b, set.invariants[0].region_b);
  EXPECT_EQ(parsed->invariants[0].support, set.invariants[0].support);
}

TEST(InvariantSerialization, ParseRejectsMalformed) {
  EXPECT_FALSE(analysis::ParseInvariants("").ok());
  EXPECT_FALSE(analysis::ParseInvariants("garbage\n").ok());
  // Count mismatch.
  EXPECT_FALSE(analysis::ParseInvariants(
                   "# chipmunk-invariants v1\ncount 2\ninv 0 64 1\n")
                   .ok());
  // Out-of-order inv lines.
  EXPECT_FALSE(analysis::ParseInvariants("# chipmunk-invariants v1\ncount 2\n"
                                         "inv 1 64 1\ninv 0 64 1\n")
                   .ok());
  // Unknown key.
  EXPECT_FALSE(analysis::ParseInvariants(
                   "# chipmunk-invariants v1\ncount 0\nbogus 1\n")
                   .ok());
  // Garbage numbers.
  EXPECT_FALSE(analysis::ParseInvariants(
                   "# chipmunk-invariants v1\ncount 1\ninv x 64 1\n")
                   .ok());
}

// ---- SuspectPairs: the --targeted priority relation. ----

TEST(SuspectPairSet, CommitInversionImplicatesPayloadBeforeCommit) {
  // Same trace as CommitInversion.CommitDurableBeforePayload: the pair is
  // (payload's carrying flush, commit's carrying flush) — the state that
  // applies the commit while the payload is in flight exposes the bug.
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0),
                 Store(128, 16, 0),  // payload
                 Store(0, 8, 0),     // commit
                 Flush(0, 64, 0),
                 Fence(),
                 Flush(128, 64, 0),
                 Fence(),
                 Marker(MarkerKind::kSyscallEnd, 0)};
  auto pairs = analysis::SuspectPairs(trace, nullptr);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 5u);   // the flush carrying the payload
  EXPECT_EQ(pairs[0].second, 3u);  // the flush carrying the commit
}

TEST(SuspectPairSet, UnreplayableEndDropsThePair) {
  // The never-flushed payload has no media op: its absence cannot be
  // staged by replaying writes, so the inversion yields no pair.
  Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), Store(128, 16, 0),
                 Store(0, 8, 0), Flush(0, 64, 0), Fence(),
                 Marker(MarkerKind::kSyscallEnd, 0)};
  EXPECT_TRUE(analysis::SuspectPairs(trace, nullptr).empty());
}

TEST(SuspectPairSet, RaceFindingsContributeNothing) {
  // A cross-syscall race's exposing state is the durable prefix, which
  // every fence window already visits first — races steer nothing.
  pmem::Trace trace = {Marker(MarkerKind::kSyscallBegin, 0), NtStore(0, 8, 0),
                       Marker(MarkerKind::kSyscallEnd, 0), Fence()};
  EXPECT_TRUE(analysis::SuspectPairs(trace, nullptr).empty());
}

TEST(SuspectPairSet, InvariantViolationImplicatesDirectedPair) {
  InvariantMiner miner;
  miner.AddTrace(BuildHb(SupportingTrace()));
  InvariantSet set = miner.Mine("testfs");
  pmem::Trace trace = ViolatingTrace();
  auto pairs = analysis::SuspectPairs(trace, &set);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 0u);   // region A's write: durable first
  EXPECT_EQ(pairs[0].second, 1u);  // region B's write: the outrunner
}

TEST(SuspectPairSet, ReversedOrderImplicatesTheLateWrite) {
  InvariantMiner miner;
  miner.AddTrace(BuildHb(SupportingTrace()));
  InvariantSet set = miner.Mine("testfs");
  // B issued before A: the exposing crash state applies B while the late A
  // write is still in flight, so the pair is (late A, B).
  pmem::Trace trace = {NtStore(4096, 8), NtStore(0, 8), Fence()};
  auto pairs = analysis::SuspectPairs(trace, &set);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 1u);   // the late region-A write
  EXPECT_EQ(pairs[0].second, 0u);  // the region-B write it should precede
}

// ---- SARIF JsonEscape, shared by the lint and analyze emitters. ----

TEST(SarifJsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(analysis::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(analysis::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(analysis::JsonEscape("\\\""), "\\\\\\\"");
}

TEST(SarifJsonEscape, ControlCharacters) {
  EXPECT_EQ(analysis::JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(analysis::JsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(analysis::JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(analysis::JsonEscape(std::string("a\x01")), "a\\u0001");
  EXPECT_EQ(analysis::JsonEscape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(analysis::JsonEscape(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(SarifJsonEscape, MultiByteUtf8PassesThrough) {
  // UTF-8 continuation bytes are >= 0x80 and must not be \u-escaped
  // byte-by-byte (that would corrupt the code point).
  EXPECT_EQ(analysis::JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");         // é
  EXPECT_EQ(analysis::JsonEscape("\xe2\x86\x92"), "\xe2\x86\x92");       // →
  EXPECT_EQ(analysis::JsonEscape("\xf0\x9f\x90\xbf"), "\xf0\x9f\x90\xbf");
}

// ---- Whole-FS analyzer sweeps. ----

struct AnalyzedTrace {
  HbAnalysis hb;
  bool synchronous = true;
};

// Records every trigger workload on `config` and lifts each trace into the
// HB model. Returns false if any workload fails to record.
bool AnalyzeAll(const chipmunk::FsConfig& config,
                std::vector<AnalyzedTrace>* out) {
  bool all_ok = true;
  for (const auto& w : trigger::AllTriggerWorkloads()) {
    auto rec = chipmunk::RecordTrace(config, w);
    if (!rec.ok()) {
      all_ok = false;
      continue;  // a seeded bug may legitimately break a workload
    }
    LintOptions options;
    options.synchronous = rec->guarantees.synchronous;
    out->push_back(AnalyzedTrace{BuildHb(rec->trace, options),
                                 rec->guarantees.synchronous});
  }
  return all_ok;
}

InvariantSet MineAll(const std::vector<AnalyzedTrace>& traces,
                     const std::string& fs) {
  InvariantMiner miner;
  for (const AnalyzedTrace& t : traces) {
    miner.AddTrace(t.hb);
  }
  return miner.Mine(fs);
}

size_t TotalAnalyzeFindings(const std::vector<AnalyzedTrace>& traces,
                            const InvariantSet& set) {
  size_t total = 0;
  for (const AnalyzedTrace& t : traces) {
    LintOptions options;
    options.synchronous = t.synchronous;
    total += HbLint(t.hb, options).size();
    total += CheckInvariants(t.hb, set).size();
  }
  return total;
}

TEST(AnalyzeSweep, ReferenceFsAnalyzesClean) {
  std::vector<AnalyzedTrace> traces;
  ASSERT_TRUE(AnalyzeAll(chipmunk::MakeReferenceConfig(), &traces));
  InvariantSet set = MineAll(traces, "reference");
  EXPECT_EQ(TotalAnalyzeFindings(traces, set), 0u);
}

// Every seeded ordering-shaped Table 1 bug must raise at least one HB
// finding or invariant violation against the bug-free twin's mined set —
// the analyzer's end-to-end detection pin.
class SeededBugAnalyze : public ::testing::TestWithParam<vfs::BugId> {};

TEST_P(SeededBugAnalyze, SeededBugRaisesHbOrInvariantFindings) {
  const vfs::BugInfo* info = vfs::FindBug(GetParam());
  ASSERT_NE(info, nullptr);
  auto fixed = chipmunk::MakeFsConfig(info->fs);
  ASSERT_TRUE(fixed.ok());
  auto seeded = chipmunk::MakeBugConfig(GetParam());
  ASSERT_TRUE(seeded.ok());

  std::vector<AnalyzedTrace> fixed_traces;
  ASSERT_TRUE(AnalyzeAll(*fixed, &fixed_traces));
  InvariantSet set = MineAll(fixed_traces, info->fs);

  std::vector<AnalyzedTrace> seeded_traces;
  AnalyzeAll(*seeded, &seeded_traces);
  const size_t seeded_total = TotalAnalyzeFindings(seeded_traces, set);
  const size_t fixed_total = TotalAnalyzeFindings(fixed_traces, set);
  EXPECT_GE(seeded_total, 1u) << info->fs;
  EXPECT_GT(seeded_total, fixed_total) << info->fs;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, SeededBugAnalyze,
    ::testing::Values(vfs::BugId::kNova2InodeFlushMissing,
                      vfs::BugId::kFortis9CsumNotFlushed,
                      vfs::BugId::kPmfs14WriteNotSynchronous,
                      vfs::BugId::kWinefs15WriteNotSynchronous,
                      vfs::BugId::kSplitfs23AppendCommitEarly,
                      vfs::BugId::kSplitfs24CommitByteNotFlushed),
    [](const ::testing::TestParamInfo<vfs::BugId>& info) {
      return std::string("bug") +
             std::to_string(static_cast<int>(info.param));
    });

}  // namespace
