#include <gtest/gtest.h>

#include "src/core/fs_registry.h"
#include "src/core/fsck.h"
#include "src/core/runner.h"
#include "src/fs/reference/reference_fs.h"
#include "src/pmem/pm_device.h"
#include "src/workload/serialize.h"
#include "src/workload/triggers.h"

namespace {

using chipmunk::Fsck;
using workload::OpKind;
using workload::ParseWorkload;
using workload::Serialize;
using workload::Workload;

TEST(Serialize, RoundTripsEveryTriggerWorkload) {
  for (const Workload& w : trigger::AllTriggerWorkloads()) {
    std::string text = Serialize(w);
    auto parsed = ParseWorkload(text, w.name);
    ASSERT_TRUE(parsed.ok()) << w.name << ": " << parsed.status().ToString();
    ASSERT_EQ(parsed->ops.size(), w.ops.size()) << w.name;
    for (size_t i = 0; i < w.ops.size(); ++i) {
      const workload::Op& a = w.ops[i];
      const workload::Op& b = parsed->ops[i];
      EXPECT_EQ(a.kind, b.kind) << w.name << " op " << i;
      EXPECT_EQ(a.path, b.path);
      EXPECT_EQ(a.path2, b.path2);
      EXPECT_EQ(a.off, b.off);
      EXPECT_EQ(a.len, b.len);
      EXPECT_EQ(a.falloc_mode, b.falloc_mode);
      EXPECT_EQ(a.fill, b.fill);
      EXPECT_EQ(a.fd_slot, b.fd_slot);
    }
  }
}

TEST(Serialize, ParsesCommentsAndBlanks) {
  auto w = ParseWorkload("# hello\n\ncreat /a\n  \nmkdir /d\n");
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->ops.size(), 2u);
  EXPECT_EQ(w->ops[0].kind, OpKind::kCreat);
  EXPECT_EQ(w->ops[1].kind, OpKind::kMkdir);
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_FALSE(ParseWorkload("frobnicate /a\n").ok());
  EXPECT_FALSE(ParseWorkload("creat\n").ok());
  EXPECT_FALSE(ParseWorkload("pwrite /a slot=0 bogus=1\n").ok());
  EXPECT_FALSE(ParseWorkload("pwrite /a slot=0 fill=toolong\n").ok());
  EXPECT_FALSE(ParseWorkload("rename /a\n").ok());
}

TEST(Serialize, FallocModesRoundTrip) {
  auto w = ParseWorkload(
      "falloc /f slot=0 mode=punch_hole off=0 len=10\n"
      "falloc /f slot=0 mode=zero_range_keep off=0 len=10\n"
      "falloc /f slot=0 mode=default off=0 len=10\n");
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->ops[0].falloc_mode, vfs::kFallocPunchHole | vfs::kFallocKeepSize);
  EXPECT_EQ(w->ops[1].falloc_mode, vfs::kFallocZeroRange | vfs::kFallocKeepSize);
  EXPECT_EQ(w->ops[2].falloc_mode, 0u);
}

TEST(FsckTest, CleanReferenceFsHasNoIssues) {
  reffs::ReferenceFs fs;
  ASSERT_TRUE(fs.Mkfs().ok());
  ASSERT_TRUE(fs.Mount().ok());
  vfs::Vfs v(&fs);
  ASSERT_TRUE(v.Mkdir("/d").ok());
  ASSERT_TRUE(v.Open("/d/f", vfs::OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v.Link("/d/f", "/g").ok());
  auto issues = Fsck(&fs);
  EXPECT_TRUE(issues.empty()) << issues[0].ToString();
}

TEST(FsckTest, UnmountedFsIsAnIssue) {
  reffs::ReferenceFs fs;
  ASSERT_TRUE(fs.Mkfs().ok());
  auto issues = Fsck(&fs);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].problem.find("not mounted"), std::string::npos);
}

// Every bundled file system must be fsck-clean after a randomized workload.
class FsckAllFs : public ::testing::TestWithParam<const char*> {};

TEST_P(FsckAllFs, CleanAfterRandomOps) {
  auto config = chipmunk::MakeFsConfig(GetParam(), {}, 2 * 1024 * 1024);
  ASSERT_TRUE(config.ok());
  pmem::PmDevice dev(config->device_size);
  pmem::Pm pm(&dev);
  auto fs = config->make(&pm);
  ASSERT_TRUE(fs->Mkfs().ok());
  ASSERT_TRUE(fs->Mount().ok());
  vfs::Vfs v(fs.get());
  // Churn through the whole trigger corpus on one image.
  for (const Workload& w : trigger::AllTriggerWorkloads()) {
    chipmunk::WorkloadRunner runner(&w, &v, nullptr);
    runner.RunAll();
    auto issues = Fsck(fs.get());
    EXPECT_TRUE(issues.empty())
        << GetParam() << " after " << w.name << ": " << issues[0].ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Fs, FsckAllFs,
                         ::testing::Values("novafs", "novafs-fortis", "pmfs", "winefs",
                                           "ext4dax", "xfsdax", "splitfs"));

}  // namespace
