// Tests for the pipelined fuzz engine: determinism across --fuzz-jobs
// values, the max_ops contract at the edges (0/1/2), the weak-FS workload
// cap, and the splice mutation's trailing-sync exclusion. The three bugfix
// regressions here fail on the pre-pipeline fuzzer: Generate underflowed
// max_ops = 0 into a ~2^64-op workload, Mutate trimmed to max_ops + 2
// *before* the trailing sync was appended, and the splice path imported the
// other corpus entry's trailing sync mid-sequence.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/fs_registry.h"
#include "src/fuzz/ace_engine.h"
#include "src/fuzz/fuzz_engine.h"
#include "src/workload/ace.h"

namespace {

using chipmunk::MakeBugConfig;
using chipmunk::MakeFsConfig;
using fuzz::CorpusEntry;
using fuzz::FuzzOptions;
using fuzz::FuzzEngine;
using fuzz::FuzzResult;
using fuzz::WorkloadGenerator;
using vfs::BugId;
using workload::OpKind;
using workload::Workload;

constexpr size_t kDev = 1024 * 1024;

// Everything in a FuzzResult except the wall/CPU time fields, which are the
// only run-to-run variation the engine permits.
void ExpectDeterministicallyEqual(const FuzzResult& a, const FuzzResult& b) {
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  EXPECT_EQ(a.coverage_points, b.coverage_points);
  EXPECT_EQ(a.crash_states, b.crash_states);
  EXPECT_EQ(a.states_deduped, b.states_deduped);
  EXPECT_EQ(a.states_pruned, b.states_pruned);
  EXPECT_EQ(a.replay_failures, b.replay_failures);
  EXPECT_EQ(a.replay_retries, b.replay_retries);
  EXPECT_EQ(a.workloads_quarantined, b.workloads_quarantined);
  EXPECT_EQ(a.lint_findings, b.lint_findings);
  EXPECT_EQ(a.lint_rule_counts, b.lint_rule_counts);
  EXPECT_EQ(a.report_hits, b.report_hits);

  ASSERT_EQ(a.unique_reports.size(), b.unique_reports.size());
  for (size_t i = 0; i < a.unique_reports.size(); ++i) {
    EXPECT_EQ(a.unique_reports[i].Signature(), b.unique_reports[i].Signature());
    EXPECT_EQ(a.unique_reports[i].ToString(), b.unique_reports[i].ToString());
  }

  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].ordinal, b.timeline[i].ordinal);
    EXPECT_EQ(a.timeline[i].signature, b.timeline[i].signature);
  }

  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].members.size(), b.clusters[i].members.size());
    EXPECT_EQ(a.clusters[i].representative.Signature(),
              b.clusters[i].representative.Signature());
  }
}

FuzzResult RunWith(const chipmunk::FsConfig& config, size_t jobs,
                   uint64_t seed, size_t iterations) {
  FuzzOptions options;
  options.seed = seed;
  options.iterations = iterations;
  options.jobs = jobs;
  FuzzEngine engine(config, options);
  return engine.Run();
}

// The tentpole guarantee: for a fixed seed the FuzzResult is identical for
// every --fuzz-jobs value, on a buggy target (reports + timeline exercised)
// and on a clean one (corpus/coverage path exercised).
TEST(FuzzEngineDeterminism, JobsDoNotChangeResultsBuggyFs) {
  auto config = MakeBugConfig(BugId::kNova4RenameInPlaceDelete, kDev);
  ASSERT_TRUE(config.ok());
  FuzzResult serial = RunWith(*config, 1, 7, 150);
  // The run must actually surface reports, or the determinism check is
  // vacuous for the timeline/dedup path.
  ASSERT_FALSE(serial.unique_reports.empty());
  ASSERT_FALSE(serial.timeline.empty());
  ExpectDeterministicallyEqual(serial, RunWith(*config, 4, 7, 150));
}

TEST(FuzzEngineDeterminism, JobsDoNotChangeResultsCleanFs) {
  auto config = MakeFsConfig("pmfs", {}, kDev);
  ASSERT_TRUE(config.ok());
  FuzzResult serial = RunWith(*config, 1, 7, 40);
  EXPECT_GT(serial.corpus_size, 1u);
  EXPECT_GT(serial.coverage_points, 0u);
  ExpectDeterministicallyEqual(serial, RunWith(*config, 4, 7, 40));
  // 0 = one worker per hardware thread; still identical.
  ExpectDeterministicallyEqual(serial, RunWith(*config, 0, 7, 40));
}

TEST(FuzzEngineDeterminism, RepresentativePruningIsJobsIndependent) {
  // The pruning decision is computed in the sequential plan pass, so a
  // pruned fuzz run stays bit-identical at every pipeline width — and must
  // actually prune something, or the check is vacuous.
  auto config = MakeBugConfig(BugId::kNova4RenameInPlaceDelete, kDev);
  ASSERT_TRUE(config.ok());
  FuzzOptions options;
  options.seed = 7;
  options.iterations = 60;
  options.harness.representative = true;
  options.jobs = 1;
  FuzzEngine serial(*config, options);
  FuzzResult a = serial.Run();
  EXPECT_GT(a.states_pruned, 0u);
  EXPECT_LT(a.states_pruned, a.crash_states);
  options.jobs = 4;
  FuzzEngine parallel(*config, options);
  ExpectDeterministicallyEqual(a, parallel.Run());
}

TEST(FuzzEngineDeterminism, SeedChangesResults) {
  auto config = MakeFsConfig("pmfs", {}, kDev);
  ASSERT_TRUE(config.ok());
  FuzzResult a = RunWith(*config, 1, 7, 30);
  FuzzResult b = RunWith(*config, 1, 8, 30);
  EXPECT_NE(a.crash_states, b.crash_states);
}

// ---------------------------------------------------------------------------
// max_ops contract (regression: 2 + Below(max_ops - 1) underflowed at 0 and
// overshot the cap at 1).
// ---------------------------------------------------------------------------

class GeneratorMaxOps : public ::testing::TestWithParam<size_t> {};

TEST_P(GeneratorMaxOps, GenerateHonorsClampedCap) {
  FuzzOptions options;
  options.max_ops = GetParam();
  const size_t cap = std::max<size_t>(2, options.max_ops);
  for (uint64_t ordinal = 0; ordinal < 64; ++ordinal) {
    common::Rng rng = common::Rng::Stream(5, ordinal);
    WorkloadGenerator gen(&options, /*weak_fs=*/false, &rng);
    Workload w = gen.Generate();
    EXPECT_GE(w.ops.size(), 2u);
    EXPECT_LE(w.ops.size(), cap);
  }
}

TEST_P(GeneratorMaxOps, WeakFsGenerateStaysWithinCapPlusSync) {
  FuzzOptions options;
  options.max_ops = GetParam();
  const size_t cap = std::max<size_t>(2, options.max_ops);
  for (uint64_t ordinal = 0; ordinal < 64; ++ordinal) {
    common::Rng rng = common::Rng::Stream(5, ordinal);
    WorkloadGenerator gen(&options, /*weak_fs=*/true, &rng);
    Workload w = gen.Generate();
    ASSERT_FALSE(w.ops.empty());
    EXPECT_EQ(w.ops.back().kind, OpKind::kSync);
    EXPECT_LE(w.ops.size(), cap + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(EdgeCases, GeneratorMaxOps,
                         ::testing::Values(0, 1, 2, 10));

// End to end: a whole fuzzing step with max_ops = 0 must terminate (the
// pre-fix code attempted a ~2^64-op workload here).
TEST(GeneratorMaxOps, EngineRunsWithMaxOpsZero) {
  auto config = MakeFsConfig("pmfs", {}, kDev);
  ASSERT_TRUE(config.ok());
  FuzzOptions options;
  options.seed = 3;
  options.max_ops = 0;
  options.iterations = 5;
  FuzzEngine engine(*config, options);
  FuzzResult result = engine.Run();
  EXPECT_EQ(result.executed, 5u);
}

// ---------------------------------------------------------------------------
// Mutation cap (regression: trim to max_ops + 2 before the trailing sync was
// appended let weak-FS mutants reach max_ops + 3).
// ---------------------------------------------------------------------------

std::vector<CorpusEntry> SeedCorpus(const FuzzOptions& options, bool weak_fs,
                                    size_t entries) {
  std::vector<CorpusEntry> corpus;
  for (uint64_t ordinal = 0; ordinal < entries; ++ordinal) {
    common::Rng rng = common::Rng::Stream(11, ordinal);
    WorkloadGenerator gen(&options, weak_fs, &rng);
    corpus.push_back(CorpusEntry{gen.Generate(), ordinal % 3});
  }
  return corpus;
}

class MutateCap : public ::testing::TestWithParam<bool> {};

TEST_P(MutateCap, EnforcedAfterFinalization) {
  const bool weak_fs = GetParam();
  FuzzOptions options;
  options.max_ops = 6;
  auto corpus = SeedCorpus(options, weak_fs, 8);
  for (uint64_t ordinal = 0; ordinal < 300; ++ordinal) {
    common::Rng rng = common::Rng::Stream(17, ordinal);
    WorkloadGenerator gen(&options, weak_fs, &rng);
    const Workload& base = WorkloadGenerator::PickCorpus(corpus, rng);
    Workload w = gen.Mutate(base, corpus);
    EXPECT_LE(w.ops.size(), options.max_ops + (weak_fs ? 1 : 0))
        << "ordinal " << ordinal;
    if (weak_fs) {
      ASSERT_FALSE(w.ops.empty());
      EXPECT_EQ(w.ops.back().kind, OpKind::kSync);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Guarantees, MutateCap, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "weak" : "strong";
                         });

// Regression: the splice mutation used to import the other corpus entry's
// trailing sync mid-sequence; the limit now stops one short of a weak-FS
// trailing sync.
TEST(MutateSplice, LimitExcludesTrailingSyncOnWeakFs) {
  FuzzOptions options;
  common::Rng rng(1);
  Workload synced;
  synced.ops.resize(5);
  synced.ops.back().kind = OpKind::kSync;
  Workload unsynced;
  unsynced.ops.resize(5);
  unsynced.ops.back().kind = OpKind::kCreat;

  WorkloadGenerator weak(&options, /*weak_fs=*/true, &rng);
  EXPECT_EQ(weak.SpliceLimit(synced), 4u);
  EXPECT_EQ(weak.SpliceLimit(unsynced), 5u);

  // Synchronous targets have no trailing-sync convention: splice anything.
  WorkloadGenerator strong(&options, /*weak_fs=*/false, &rng);
  EXPECT_EQ(strong.SpliceLimit(synced), 5u);
}

// The weak-FS invariant over the whole engine: every workload a weak-FS run
// executes ends in exactly the ops the cap allows. Pinned via a short run on
// ext4dax (weak guarantees) with a tiny cap.
TEST(WeakFsCap, HoldsAcrossEngineRun) {
  auto config = MakeFsConfig("ext4dax", {}, kDev);
  ASSERT_TRUE(config.ok());
  FuzzOptions options;
  options.seed = 9;
  options.max_ops = 4;
  options.iterations = 30;
  FuzzEngine engine(*config, options);
  ASSERT_TRUE(engine.weak_fs());
  FuzzResult result = engine.Run();
  EXPECT_EQ(result.executed, 30u);
}

// ---------------------------------------------------------------------------
// AceEngine: the sweep through the same driver, with the same determinism
// guarantee across pipeline widths.
// ---------------------------------------------------------------------------

FuzzResult RunAceWith(const chipmunk::FsConfig& config, size_t jobs,
                      size_t limit) {
  FuzzOptions options;
  options.iterations = limit;
  options.jobs = jobs;
  workload::AceOptions ace;
  ace.seq = 1;
  fuzz::AceEngine engine(config, options, ace);
  return engine.Run();
}

TEST(AceEngineDeterminism, JobsDoNotChangeResults) {
  auto config = MakeBugConfig(BugId::kNova4RenameInPlaceDelete, kDev);
  ASSERT_TRUE(config.ok());
  FuzzResult serial = RunAceWith(*config, 1, 56);
  EXPECT_EQ(serial.executed, 56u);
  ASSERT_FALSE(serial.unique_reports.empty());
  ExpectDeterministicallyEqual(serial, RunAceWith(*config, 4, 56));
  ExpectDeterministicallyEqual(serial, RunAceWith(*config, 0, 56));
}

// iterations = 0 (or anything past the enumeration) means the whole sweep,
// and the sweep admits nothing into a corpus.
TEST(AceEngineDeterminism, IterationsClampToSweepLength) {
  auto config = MakeFsConfig("pmfs", {}, kDev);
  ASSERT_TRUE(config.ok());
  FuzzResult full = RunAceWith(*config, 1, 0);
  EXPECT_EQ(full.executed, 56u);
  EXPECT_EQ(full.corpus_size, 0u);
  FuzzResult over = RunAceWith(*config, 1, 10000);
  EXPECT_EQ(over.executed, 56u);
}

// Step() is the serial loop: ordinals advance one at a time and fresh
// reports are returned as they surface.
TEST(FuzzEngineStep, FindsSeededBug) {
  auto config = MakeBugConfig(BugId::kNova4RenameInPlaceDelete, kDev);
  ASSERT_TRUE(config.ok());
  FuzzOptions options;
  options.seed = 42;
  FuzzEngine engine(*config, options);
  bool found = false;
  for (size_t i = 0; i < 400 && !found; ++i) {
    found = engine.Step() > 0;
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(engine.result().timeline.empty());
}

}  // namespace
