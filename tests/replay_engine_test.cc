// ReplayEngine: unit coalescing, crash-state enumeration, the determinism
// guarantee of the parallel worker pool, and violation-targeted visitation.
#include "src/core/replay_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/analysis/hb.h"
#include "src/analysis/invariants.h"
#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/fs/reference/reference_fs.h"
#include "src/pmem/fault.h"
#include "src/workload/triggers.h"

namespace chipmunk {
namespace {

using pmem::MarkerKind;
using pmem::PmOp;
using pmem::PmOpKind;
using Unit = ReplayEngine::Unit;

constexpr size_t kDev = 1024 * 1024;

PmOp Store(uint64_t off, size_t size, int syscall = 0) {
  PmOp op;
  op.kind = PmOpKind::kNtStore;
  op.off = off;
  op.data.assign(size, 0xab);
  op.syscall_index = syscall;
  return op;
}

PmOp Fence() {
  PmOp op;
  op.kind = PmOpKind::kFence;
  return op;
}

PmOp Marker(MarkerKind marker, int syscall) {
  PmOp op;
  op.kind = PmOpKind::kMarker;
  op.marker = marker;
  op.syscall_index = syscall;
  return op;
}

// ---- BuildUnits: coalescing on in-flight adjacency + offset contiguity ----

TEST(BuildUnitsTest, CoalescesAcrossInterveningTraceOps) {
  // Two halves of one 1 KiB data write separated by an unrelated trace op
  // (e.g. a flush or marker): trace indices 0 and 2 are not adjacent, but
  // the stores are adjacent in the in-flight list and contiguous on media.
  pmem::Trace trace;
  trace.push_back(Store(0, 512));
  trace.push_back(Marker(MarkerKind::kNone, 0));
  trace.push_back(Store(512, 512));
  HarnessOptions options;

  auto units = ReplayEngine::BuildUnits(trace, {0, 2}, options);
  ASSERT_EQ(units.size(), 1u);
  EXPECT_TRUE(units[0].data);
  EXPECT_EQ(units[0].op_indices, (std::vector<size_t>{0, 2}));
}

TEST(BuildUnitsTest, DoesNotCoalesceNonContiguousOffsets) {
  // Trace-adjacent large stores that land on disjoint media regions are
  // distinct logical writes and must stay separate units.
  pmem::Trace trace;
  trace.push_back(Store(0, 512));
  trace.push_back(Store(4096, 512));
  HarnessOptions options;

  auto units = ReplayEngine::BuildUnits(trace, {0, 1}, options);
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0].op_indices, (std::vector<size_t>{0}));
  EXPECT_EQ(units[1].op_indices, (std::vector<size_t>{1}));
}

TEST(BuildUnitsTest, SmallStoresNeverCoalesce) {
  pmem::Trace trace;
  trace.push_back(Store(0, 16));
  trace.push_back(Store(16, 16));
  HarnessOptions options;

  auto units = ReplayEngine::BuildUnits(trace, {0, 1}, options);
  ASSERT_EQ(units.size(), 2u);
  EXPECT_FALSE(units[0].data);
  EXPECT_FALSE(units[1].data);
}

// ---- ForEachFenceState: partial-data states carry real trace indices ----

TEST(ForEachFenceStateTest, PartialDataSubsetsAreAppliedTraceIndices) {
  // One small metadata store (unit 0) and one coalesced 3-store data write
  // (unit 1, trace indices 1..3).
  pmem::Trace trace;
  trace.push_back(Store(0, 16));
  trace.push_back(Store(1024, 256));
  trace.push_back(Store(1280, 256));
  trace.push_back(Store(1536, 256));
  HarnessOptions options;
  auto units = ReplayEngine::BuildUnits(trace, {0, 1, 2, 3}, options);
  ASSERT_EQ(units.size(), 2u);

  struct State {
    std::vector<size_t> applied;
    std::vector<size_t> subset;
  };
  std::vector<State> states;
  ForEachFenceState(units, /*max_size=*/1, /*prefix_only=*/false,
                    [&](const std::vector<size_t>& applied,
                        const std::vector<size_t>& subset) {
                      states.push_back(State{applied, subset});
                      return true;
                    });

  // Subset states: {}, {unit 0}, {unit 1}; then the two partial-data
  // variants of unit 1 (half = 2 of its 3 stores).
  ASSERT_EQ(states.size(), 5u);
  EXPECT_EQ(states[0].applied, std::vector<size_t>{});
  EXPECT_EQ(states[1].subset, (std::vector<size_t>{0}));
  EXPECT_EQ(states[2].applied, (std::vector<size_t>{1, 2, 3}));

  // The partial variants record the trace indices they actually applied —
  // not the bare unit index, which would collide with a genuine single-unit
  // subset like states[1]/states[2] in the report signature.
  EXPECT_EQ(states[3].applied, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(states[3].subset, states[3].applied);
  EXPECT_EQ(states[4].applied, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(states[4].subset, states[4].applied);
  EXPECT_NE(states[3].subset, (std::vector<size_t>{1}));
}

// ---- writes_since_check: reset even when the syscall-end check is skipped --

TEST(ReplayEngineTest, SkippedCheckDoesNotLeaveStaleWriteCount) {
  // Weak-guarantee FS: op 0 (creat) writes media but is not a sync-family
  // op, so its syscall-end check is skipped. Op 1 (fsync) changes nothing —
  // the oracle agrees pre == post and no new media writes happen — so it
  // must not be checked either. A stale writes_since_check from op 0 would
  // make op 1 look effectful and manufacture a phantom crash state.
  pmem::Trace trace;
  trace.push_back(Marker(MarkerKind::kSyscallBegin, 0));
  trace.push_back(Store(0, 64, 0));
  trace.push_back(Fence());
  trace.push_back(Marker(MarkerKind::kSyscallEnd, 0));
  trace.push_back(Marker(MarkerKind::kSyscallBegin, 1));
  trace.push_back(Marker(MarkerKind::kSyscallEnd, 1));

  workload::Workload w;
  w.name = "stale-count";
  w.ops.push_back(trigger::MkOp(workload::OpKind::kCreat, "/f"));
  w.ops.push_back(trigger::MkOp(workload::OpKind::kFsync, "/f"));

  OracleTrace oracle;
  oracle.universe = {"/", "/f"};
  oracle.pre.resize(2);
  oracle.post.resize(2);
  oracle.statuses.resize(2);

  FsConfig config;
  config.name = "reference";
  config.device_size = kDev;
  config.make = [](pmem::Pm*) { return std::make_unique<reffs::ReferenceFs>(); };

  HarnessOptions options;
  ReplayEngine engine(&config, &options);
  vfs::CrashGuarantees weak;
  weak.synchronous = false;
  std::vector<uint8_t> base(kDev, 0);

  ReplayResult result = engine.Run(trace, base, w, oracle, weak);
  EXPECT_EQ(result.crash_states, 0u);
  EXPECT_TRUE(result.reports.empty());
}

// ---- Determinism: jobs > 1 is bit-identical to jobs = 1 ----

std::vector<std::string> ReportStrings(const RunStats& stats) {
  std::vector<std::string> out;
  for (const BugReport& r : stats.reports) {
    out.push_back(r.ToString());
  }
  return out;
}

void ExpectIdenticalAcrossJobs(const FsConfig& config, HarnessOptions options,
                               const workload::Workload& w) {
  options.jobs = 1;
  Harness sequential(config, options);
  auto seq = sequential.TestWorkload(w);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  options.jobs = 4;
  Harness parallel(config, options);
  auto par = parallel.TestWorkload(w);
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  EXPECT_EQ(seq->crash_points, par->crash_points) << w.name;
  EXPECT_EQ(seq->crash_states, par->crash_states) << w.name;
  EXPECT_EQ(seq->raw_reports, par->raw_reports) << w.name;
  EXPECT_EQ(ReportStrings(*seq), ReportStrings(*par)) << w.name;
}

TEST(ReplayEngineDeterminismTest, CleanFsTriggerSuite) {
  auto config = MakeFsConfig("novafs", {}, kDev);
  ASSERT_TRUE(config.ok());
  for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
    ExpectIdenticalAcrossJobs(*config, HarnessOptions{}, w);
  }
}

TEST(ReplayEngineDeterminismTest, BuggyFsTriggerSuite) {
  // A buggy configuration produces non-empty report lists, so this also
  // checks that report ordering and dedup representatives are scheduling-
  // independent.
  for (vfs::BugId bug : {vfs::BugId::kNova4RenameInPlaceDelete,
                         vfs::BugId::kNova2InodeFlushMissing}) {
    auto config = MakeBugConfig(bug, kDev);
    ASSERT_TRUE(config.ok());
    for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
      ExpectIdenticalAcrossJobs(*config, HarnessOptions{}, w);
    }
  }
}

TEST(ReplayEngineDeterminismTest, StopAtFirstReport) {
  auto config = MakeBugConfig(vfs::BugId::kNova4RenameInPlaceDelete, kDev);
  ASSERT_TRUE(config.ok());
  HarnessOptions options;
  options.stop_at_first_report = true;
  const auto workloads = trigger::AllTriggerWorkloads();
  const workload::Workload* w = trigger::FindWorkload(
      workloads, trigger::TriggerFor(vfs::BugId::kNova4RenameInPlaceDelete));
  ASSERT_NE(w, nullptr);
  ExpectIdenticalAcrossJobs(*config, options, *w);
}

TEST(ReplayEngineDeterminismTest, CrashStateBudget) {
  auto config = MakeBugConfig(vfs::BugId::kNova4RenameInPlaceDelete, kDev);
  ASSERT_TRUE(config.ok());
  const auto workloads = trigger::AllTriggerWorkloads();
  const workload::Workload* w = trigger::FindWorkload(
      workloads, trigger::TriggerFor(vfs::BugId::kNova4RenameInPlaceDelete));
  ASSERT_NE(w, nullptr);
  for (size_t budget : {1u, 7u, 64u}) {
    HarnessOptions options;
    options.max_crash_states = budget;
    ExpectIdenticalAcrossJobs(*config, options, *w);
  }
}

// ---- CoW overlays: pure materialization strategy, bit-identical results ----

// Runs the workload with copy-on-write crash images and with full deep
// copies, at 1 and 4 workers each, and requires every deterministic output —
// counters, reports, clean-state hashes — to match exactly. The overlay is
// an implementation detail of image construction and must never be visible
// in the results.
void ExpectCowMatchesDeep(const FsConfig& config, HarnessOptions options,
                          const workload::Workload& w) {
  std::vector<RunStats> runs;
  for (bool cow : {false, true}) {
    for (size_t jobs : {1u, 4u}) {
      options.cow_images = cow;
      options.jobs = jobs;
      Harness harness(config, options);
      auto stats = harness.TestWorkload(w);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      runs.push_back(std::move(*stats));
    }
  }
  const RunStats& ref = runs.front();
  for (const RunStats& run : runs) {
    EXPECT_EQ(run.crash_points, ref.crash_points) << w.name;
    EXPECT_EQ(run.crash_states, ref.crash_states) << w.name;
    EXPECT_EQ(run.states_deduped, ref.states_deduped) << w.name;
    EXPECT_EQ(run.states_pruned, ref.states_pruned) << w.name;
    EXPECT_EQ(run.raw_reports, ref.raw_reports) << w.name;
    EXPECT_EQ(run.clean_state_hashes, ref.clean_state_hashes) << w.name;
    EXPECT_EQ(ReportStrings(run), ReportStrings(ref)) << w.name;
  }
}

TEST(CowEquivalenceTest, CleanFsTriggerSuite) {
  auto config = MakeFsConfig("novafs", {}, kDev);
  ASSERT_TRUE(config.ok());
  for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
    ExpectCowMatchesDeep(*config, HarnessOptions{}, w);
  }
}

TEST(CowEquivalenceTest, BuggyFsTriggerSuite) {
  for (vfs::BugId bug : {vfs::BugId::kNova4RenameInPlaceDelete,
                         vfs::BugId::kNova2InodeFlushMissing}) {
    auto config = MakeBugConfig(bug, kDev);
    ASSERT_TRUE(config.ok());
    for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
      ExpectCowMatchesDeep(*config, HarnessOptions{}, w);
    }
  }
}

TEST(CowEquivalenceTest, FaultInjectionSuite) {
  // Fault decisions (tears, flips, poison) are keyed by state ordinal and
  // applied to the materialized image, so they too must be independent of
  // how the image was built.
  auto config = MakeFsConfig("novafs", {}, kDev);
  ASSERT_TRUE(config.ok());
  HarnessOptions options;
  options.fault_plan = pmem::FaultPlan::All(7);
  for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
    ExpectCowMatchesDeep(*config, options, w);
  }
}

// ---- Representative-state pruning ----

TEST(RepresentativeTest, DeterministicAcrossJobs) {
  HarnessOptions options;
  options.representative = true;
  auto clean = MakeFsConfig("novafs", {}, kDev);
  ASSERT_TRUE(clean.ok());
  auto buggy = MakeBugConfig(vfs::BugId::kNova4RenameInPlaceDelete, kDev);
  ASSERT_TRUE(buggy.ok());
  for (const FsConfig* config : {&*clean, &*buggy}) {
    for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
      ExpectIdenticalAcrossJobs(*config, options, w);
    }
  }
}

TEST(RepresentativeTest, PrunesStatesButKeepsDetections) {
  // The safety property of the heuristic: for every trigger workload on a
  // buggy configuration, pruned replay must report a bug exactly when
  // exhaustive replay does. Ordinal space (crash_states) is unchanged —
  // members are visited, counted, and skipped.
  for (vfs::BugId bug : {vfs::BugId::kNova4RenameInPlaceDelete,
                         vfs::BugId::kNova2InodeFlushMissing}) {
    auto config = MakeBugConfig(bug, kDev);
    ASSERT_TRUE(config.ok());
    size_t total_pruned = 0;
    for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
      HarnessOptions options;
      Harness exhaustive(*config, options);
      auto full = exhaustive.TestWorkload(w);
      ASSERT_TRUE(full.ok()) << full.status().ToString();
      options.representative = true;
      Harness pruning(*config, options);
      auto pruned = pruning.TestWorkload(w);
      ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
      EXPECT_EQ(pruned->crash_states, full->crash_states) << w.name;
      EXPECT_EQ(full->states_pruned, 0u) << w.name;
      EXPECT_EQ(pruned->reports.empty(), full->reports.empty()) << w.name;
      // Pruned clean hashes are a subset of the exhaustive ones (members
      // never enter the equivalence index).
      std::vector<uint64_t> full_sorted = full->clean_state_hashes;
      std::vector<uint64_t> pruned_sorted = pruned->clean_state_hashes;
      std::sort(full_sorted.begin(), full_sorted.end());
      std::sort(pruned_sorted.begin(), pruned_sorted.end());
      EXPECT_TRUE(std::includes(full_sorted.begin(), full_sorted.end(),
                                pruned_sorted.begin(), pruned_sorted.end()))
          << w.name;
      total_pruned += pruned->states_pruned;
    }
    // The heuristic must actually fire somewhere in the suite.
    EXPECT_GT(total_pruned, 0u);
  }
}

// ---- Violation-targeted visitation (--targeted) ----

// Mines ordering invariants from the clean twin of `config`'s file system
// over the trigger suite — the steering corpus for targeted replay.
analysis::InvariantSet MineCleanInvariants(const std::string& fs) {
  analysis::InvariantMiner miner;
  auto clean = MakeFsConfig(fs, {}, kDev);
  if (clean.ok()) {
    for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
      auto recorded = RecordTrace(*clean, w);
      if (!recorded.ok()) {
        continue;
      }
      analysis::LintOptions options;
      options.synchronous = recorded->guarantees.synchronous;
      miner.AddTrace(analysis::BuildHb(recorded->trace, options));
    }
  }
  return miner.Mine(fs);
}

// With no cutoff, targeting is a pure visitation reorder: results are
// collected under canonical ordinals and sorted after the walk, so every
// deterministic output must be bit-identical to the untargeted run. Lint is
// enabled on both sides so both record the same (temporal-logged) trace.
void ExpectTargetedMatchesUntargeted(const FsConfig& config,
                                     HarnessOptions options,
                                     const workload::Workload& w) {
  options.lint = true;
  options.targeted = false;
  Harness plain(config, options);
  auto base = plain.TestWorkload(w);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  options.targeted = true;
  Harness steered(config, options);
  auto hot = steered.TestWorkload(w);
  ASSERT_TRUE(hot.ok()) << hot.status().ToString();

  EXPECT_EQ(hot->crash_points, base->crash_points) << w.name;
  EXPECT_EQ(hot->crash_states, base->crash_states) << w.name;
  EXPECT_EQ(hot->states_deduped, base->states_deduped) << w.name;
  EXPECT_EQ(hot->states_pruned, base->states_pruned) << w.name;
  EXPECT_EQ(hot->raw_reports, base->raw_reports) << w.name;
  EXPECT_EQ(hot->clean_state_hashes, base->clean_state_hashes) << w.name;
  EXPECT_EQ(ReportStrings(*hot), ReportStrings(*base)) << w.name;
}

TEST(TargetedReplayTest, NoCutoffBitIdenticalToUntargeted) {
  auto clean = MakeFsConfig("novafs", {}, kDev);
  ASSERT_TRUE(clean.ok());
  auto buggy = MakeBugConfig(vfs::BugId::kNova2InodeFlushMissing, kDev);
  ASSERT_TRUE(buggy.ok());
  for (const FsConfig* config : {&*clean, &*buggy}) {
    for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
      ExpectTargetedMatchesUntargeted(*config, HarnessOptions{}, w);
    }
  }
}

TEST(TargetedReplayTest, NoCutoffBitIdenticalWithInvariants) {
  const analysis::InvariantSet set = MineCleanInvariants("novafs");
  EXPECT_FALSE(set.invariants.empty());
  auto buggy = MakeBugConfig(vfs::BugId::kNova2InodeFlushMissing, kDev);
  ASSERT_TRUE(buggy.ok());
  HarnessOptions options;
  options.invariants = &set;
  for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
    ExpectTargetedMatchesUntargeted(*buggy, options, w);
  }
}

TEST(TargetedReplayTest, DeterministicAcrossJobs) {
  const analysis::InvariantSet set = MineCleanInvariants("novafs");
  HarnessOptions options;
  options.targeted = true;
  options.invariants = &set;
  auto clean = MakeFsConfig("novafs", {}, kDev);
  ASSERT_TRUE(clean.ok());
  auto buggy = MakeBugConfig(vfs::BugId::kNova2InodeFlushMissing, kDev);
  ASSERT_TRUE(buggy.ok());
  for (const FsConfig* config : {&*clean, &*buggy}) {
    for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
      ExpectIdenticalAcrossJobs(*config, options, w);
    }
  }
}

TEST(TargetedReplayTest, ComposesWithRepresentativePruning) {
  HarnessOptions options;
  options.representative = true;
  auto buggy = MakeBugConfig(vfs::BugId::kNova2InodeFlushMissing, kDev);
  ASSERT_TRUE(buggy.ok());
  for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
    ExpectTargetedMatchesUntargeted(*buggy, options, w);
    HarnessOptions steered = options;
    steered.targeted = true;
    ExpectIdenticalAcrossJobs(*buggy, steered, w);
  }
}

TEST(TargetedReplayTest, FirstReportReachedWithFewerStates) {
  // The point of targeting: under the first-report cutoff, exposing-first
  // visitation reaches a reporting state after fewer mounted crash states.
  // The commit-before-payload bug is the steerable class — its exposing
  // state applies the commit while the payload is in flight, which sits
  // mid-window in canonical order. (Missing-durability bugs report at the
  // durable-prefix state, position zero of its window, where targeting is
  // correctly a no-op.) Clean workloads never cut off (all states are
  // visited either way), so only reporting workloads contribute; the gate
  // is strict in aggregate across the trigger suite, mirroring
  // bench_table1_bugs --targeted.
  auto buggy = MakeBugConfig(vfs::BugId::kSplitfs23AppendCommitEarly, kDev);
  ASSERT_TRUE(buggy.ok());
  const analysis::InvariantSet set = MineCleanInvariants("splitfs");
  HarnessOptions options;
  options.stop_at_first_report = true;
  options.replay_cap = 2;
  uint64_t untargeted_states = 0;
  uint64_t targeted_states = 0;
  for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
    Harness plain(*buggy, options);
    auto base = plain.TestWorkload(w);
    ASSERT_TRUE(base.ok()) << base.status().ToString();

    HarnessOptions steered = options;
    steered.targeted = true;
    steered.invariants = &set;
    Harness hot_harness(*buggy, steered);
    auto hot = hot_harness.TestWorkload(w);
    ASSERT_TRUE(hot.ok()) << hot.status().ToString();

    // Targeting may not change what is detected, only how fast.
    EXPECT_EQ(hot->reports.empty(), base->reports.empty()) << w.name;
    untargeted_states += base->crash_states;
    targeted_states += hot->crash_states;
  }
  EXPECT_LT(targeted_states, untargeted_states);
}

TEST(TargetedReplayTest, InertUnderFaultInjection) {
  // Fault decisions are keyed by visitation ordinal, so targeting would
  // change which faults hit which states; the plan disables itself and the
  // run must be bit-identical to an untargeted fault-injection run.
  auto config = MakeFsConfig("novafs", {}, kDev);
  ASSERT_TRUE(config.ok());
  HarnessOptions options;
  options.fault_plan = pmem::FaultPlan::All(7);
  const auto workloads = trigger::AllTriggerWorkloads();
  ExpectTargetedMatchesUntargeted(*config, options, workloads.front());
}

TEST(RepresentativeTest, DisabledUnderFaultInjection) {
  // Fault decisions are keyed by state ordinal: two states with the same
  // page signature see different faults, so the equivalence argument does
  // not hold and the plan must fall back to exhaustive replay.
  auto config = MakeFsConfig("novafs", {}, kDev);
  ASSERT_TRUE(config.ok());
  HarnessOptions options;
  options.representative = true;
  options.fault_plan = pmem::FaultPlan::All(7);
  Harness harness(*config, options);
  const auto workloads = trigger::AllTriggerWorkloads();
  auto stats = harness.TestWorkload(workloads.front());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->states_pruned, 0u);
}

}  // namespace
}  // namespace chipmunk
