#include <gtest/gtest.h>

#include <memory>

#include "src/common/crc32.h"
#include "src/fs/novafs/nova_fs.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "src/vfs/vfs.h"
#include "tests/fs_test_util.h"

namespace {

using common::ErrorCode;
using novafs::NovaFs;
using novafs::NovaOptions;
using vfs::OpenFlags;

constexpr size_t kDevSize = 2 * 1024 * 1024;

class NovaFsTest : public ::testing::Test {
 protected:
  void Make(NovaOptions options = {}) {
    dev_ = std::make_unique<pmem::PmDevice>(kDevSize);
    pm_ = std::make_unique<pmem::Pm>(dev_.get());
    fs_ = std::make_unique<NovaFs>(pm_.get(), options);
    ASSERT_TRUE(fs_->Mkfs().ok());
    ASSERT_TRUE(fs_->Mount().ok());
    v_ = std::make_unique<vfs::Vfs>(fs_.get());
  }
  void SetUp() override { Make(); }

  // Simulates a clean-cache crash + recovery: remounts a fresh FS object on
  // the same media (all DRAM state rebuilt from PM).
  void Remount(NovaOptions options = {}) {
    fs_ = std::make_unique<NovaFs>(pm_.get(), options);
    ASSERT_TRUE(fs_->Mount().ok()) << fs_->Mount().ToString();
    v_ = std::make_unique<vfs::Vfs>(fs_.get());
  }

  std::unique_ptr<pmem::PmDevice> dev_;
  std::unique_ptr<pmem::Pm> pm_;
  std::unique_ptr<NovaFs> fs_;
  std::unique_ptr<vfs::Vfs> v_;
};

TEST_F(NovaFsTest, MkfsMountEmptyRoot) {
  auto entries = v_->ReadDir("/");
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
  auto st = v_->Stat("/");
  EXPECT_EQ(st->type, vfs::FileType::kDirectory);
  EXPECT_EQ(st->nlink, 2u);
}

TEST_F(NovaFsTest, MountWithoutMkfsFails) {
  pmem::PmDevice dev(kDevSize);
  pmem::Pm pm(&dev);
  NovaFs fs(&pm, {});
  EXPECT_EQ(fs.Mount().code(), ErrorCode::kCorruption);
}

TEST_F(NovaFsTest, DeviceTooSmallRejected) {
  pmem::PmDevice dev(4096);
  pmem::Pm pm(&dev);
  NovaFs fs(&pm, {});
  EXPECT_FALSE(fs.Mkfs().ok());
}

TEST_F(NovaFsTest, CreateWriteReadBack) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  ASSERT_TRUE(fd.ok());
  std::string msg = "hello persistent world";
  ASSERT_TRUE(v_->Write(*fd, reinterpret_cast<const uint8_t*>(msg.data()),
                        msg.size())
                  .ok());
  auto content = v_->ReadFile("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(std::string(content->begin(), content->end()), msg);
}

TEST_F(NovaFsTest, WriteSurvivesRemount) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(10000, 'x');  // spans three data pages
  ASSERT_TRUE(v_->Write(*fd, data.data(), data.size()).ok());
  Remount();
  auto content = v_->ReadFile("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 10000u);
  EXPECT_EQ((*content)[9999], 'x');
}

TEST_F(NovaFsTest, OverwriteIsCopyOnWrite) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> a(5000, 'a');
  ASSERT_TRUE(v_->Write(*fd, a.data(), a.size()).ok());
  std::vector<uint8_t> b(100, 'b');
  ASSERT_TRUE(v_->Pwrite(*fd, b.data(), b.size(), 4090).ok());
  Remount();
  auto content = v_->ReadFile("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ((*content)[4089], 'a');
  EXPECT_EQ((*content)[4090], 'b');
  EXPECT_EQ((*content)[4189], 'b');
  EXPECT_EQ((*content)[4190], 'a');
  EXPECT_EQ(content->size(), 5000u);
}

TEST_F(NovaFsTest, SparseWriteReadsZerosInHole) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  uint8_t b = 'z';
  ASSERT_TRUE(v_->Pwrite(*fd, &b, 1, 9000).ok());
  auto content = v_->ReadFile("/f");
  ASSERT_TRUE(content.ok());
  ASSERT_EQ(content->size(), 9001u);
  EXPECT_EQ((*content)[0], 0);
  EXPECT_EQ((*content)[8999], 0);
  EXPECT_EQ((*content)[9000], 'z');
}

TEST_F(NovaFsTest, MetadataSurvivesRemount) {
  ASSERT_TRUE(v_->Mkdir("/d").ok());
  ASSERT_TRUE(v_->Open("/d/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Link("/d/f", "/d/g").ok());
  Remount();
  EXPECT_EQ(v_->Stat("/d")->nlink, 2u);  // no subdirectories
  EXPECT_EQ(v_->Stat("/d/f")->nlink, 2u);
  auto entries = v_->ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

TEST_F(NovaFsTest, UnlinkFreesAndForgets) {
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Unlink("/f").ok());
  EXPECT_EQ(v_->Stat("/f").status().code(), ErrorCode::kNotFound);
  Remount();
  EXPECT_EQ(v_->Stat("/f").status().code(), ErrorCode::kNotFound);
}

TEST_F(NovaFsTest, HardLinkKeepsInodeAliveAcrossUnlink) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  uint8_t b = 'q';
  ASSERT_TRUE(v_->Write(*fd, &b, 1).ok());
  ASSERT_TRUE(v_->Link("/f", "/g").ok());
  ASSERT_TRUE(v_->Unlink("/f").ok());
  Remount();
  auto content = v_->ReadFile("/g");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ((*content)[0], 'q');
  EXPECT_EQ(v_->Stat("/g")->nlink, 1u);
}

TEST_F(NovaFsTest, RenameMovesAcrossDirectories) {
  ASSERT_TRUE(v_->Mkdir("/a").ok());
  ASSERT_TRUE(v_->Mkdir("/b").ok());
  ASSERT_TRUE(v_->Open("/a/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Rename("/a/f", "/b/g").ok());
  Remount();
  EXPECT_FALSE(v_->Stat("/a/f").ok());
  EXPECT_TRUE(v_->Stat("/b/g").ok());
}

TEST_F(NovaFsTest, RenameDirectoryUpdatesParentLinkCounts) {
  ASSERT_TRUE(v_->Mkdir("/a").ok());
  ASSERT_TRUE(v_->Mkdir("/b").ok());
  ASSERT_TRUE(v_->Mkdir("/a/d").ok());
  EXPECT_EQ(v_->Stat("/a")->nlink, 3u);
  ASSERT_TRUE(v_->Rename("/a/d", "/b/d").ok());
  Remount();
  EXPECT_EQ(v_->Stat("/a")->nlink, 2u);
  EXPECT_EQ(v_->Stat("/b")->nlink, 3u);
}

TEST_F(NovaFsTest, RenameOverwriteReleasesVictim) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  uint8_t b = '1';
  ASSERT_TRUE(v_->Write(*fd, &b, 1).ok());
  ASSERT_TRUE(v_->Open("/g", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Rename("/f", "/g").ok());
  Remount();
  EXPECT_FALSE(v_->Stat("/f").ok());
  auto content = v_->ReadFile("/g");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 1u);
}

TEST_F(NovaFsTest, TruncateShrinkUnalignedKeepsPrefix) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(8192, 'm');
  ASSERT_TRUE(v_->Write(*fd, data.data(), data.size()).ok());
  ASSERT_TRUE(v_->Truncate("/f", 4500).ok());
  Remount();
  auto content = v_->ReadFile("/f");
  ASSERT_TRUE(content.ok());
  ASSERT_EQ(content->size(), 4500u);
  EXPECT_EQ((*content)[4499], 'm');
}

TEST_F(NovaFsTest, TruncateShrinkThenExtendReadsZeros) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(4096, 'm');
  ASSERT_TRUE(v_->Write(*fd, data.data(), data.size()).ok());
  ASSERT_TRUE(v_->Truncate("/f", 100).ok());
  ASSERT_TRUE(v_->Truncate("/f", 4096).ok());
  Remount();
  auto content = v_->ReadFile("/f");
  ASSERT_TRUE(content.ok());
  ASSERT_EQ(content->size(), 4096u);
  EXPECT_EQ((*content)[99], 'm');
  EXPECT_EQ((*content)[100], 0);
  EXPECT_EQ((*content)[4095], 0);
}

TEST_F(NovaFsTest, FallocateExtendsWithZeros) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  ASSERT_TRUE(v_->FallocateFd(*fd, 0, 0, 6000).ok());
  Remount();
  auto st = v_->Stat("/f");
  EXPECT_EQ(st->size, 6000u);
  auto content = v_->ReadFile("/f");
  EXPECT_EQ((*content)[5999], 0);
}

TEST_F(NovaFsTest, FallocateKeepSizeHidesAllocation) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  ASSERT_TRUE(v_->FallocateFd(*fd, vfs::kFallocKeepSize, 0, 6000).ok());
  EXPECT_EQ(v_->Stat("/f")->size, 0u);
}

TEST_F(NovaFsTest, FallocateZeroRangeZeroes) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(1000, 'k');
  ASSERT_TRUE(v_->Write(*fd, data.data(), data.size()).ok());
  ASSERT_TRUE(v_->FallocateFd(*fd, vfs::kFallocZeroRange | vfs::kFallocKeepSize,
                              100, 200)
                  .ok());
  auto content = v_->ReadFile("/f");
  EXPECT_EQ((*content)[99], 'k');
  EXPECT_EQ((*content)[100], 0);
  EXPECT_EQ((*content)[299], 0);
  EXPECT_EQ((*content)[300], 'k');
}

TEST_F(NovaFsTest, ManyEntriesRollLogBlocks) {
  // Forces several log-block extensions in the root directory log.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(v_->Open("/f" + std::to_string(i), OpenFlags{.create = true}).ok());
  }
  Remount();
  auto entries = v_->ReadDir("/");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 30u);
  for (int i = 0; i < 30; i += 2) {
    ASSERT_TRUE(v_->Unlink("/f" + std::to_string(i)).ok());
  }
  Remount();
  EXPECT_EQ(v_->ReadDir("/")->size(), 15u);
}

TEST_F(NovaFsTest, NameTooLongRejected) {
  std::string name(30, 'n');
  EXPECT_EQ(v_->Open("/" + name, OpenFlags{.create = true}).status().code(),
            ErrorCode::kNameTooLong);
}

TEST_F(NovaFsTest, EnospcOnHugeWriteLeavesFileIntact) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> small(100, 's');
  ASSERT_TRUE(v_->Write(*fd, small.data(), small.size()).ok());
  std::vector<uint8_t> huge(kDevSize, 'h');
  EXPECT_EQ(v_->Pwrite(*fd, huge.data(), huge.size(), 0).status().code(),
            ErrorCode::kNoSpace);
  auto content = v_->ReadFile("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 100u);
  EXPECT_EQ((*content)[0], 's');
}

TEST_F(NovaFsTest, InodeExhaustionReportsNoSpace) {
  common::Status last = common::OkStatus();
  for (int i = 0; i < 300; ++i) {
    auto fd = v_->Open("/i" + std::to_string(i), OpenFlags{.create = true});
    if (!fd.ok()) {
      last = fd.status();
      break;
    }
  }
  EXPECT_EQ(last.code(), ErrorCode::kNoSpace);
}

TEST_F(NovaFsTest, FortisBasicOpsAndRemount) {
  Make(NovaOptions{.fortis = true});
  ASSERT_TRUE(v_->Mkdir("/d").ok());
  auto fd = v_->Open("/d/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(5000, 'f');
  ASSERT_TRUE(v_->Write(*fd, data.data(), data.size()).ok());
  ASSERT_TRUE(v_->Truncate("/d/f", 1234).ok());
  Remount(NovaOptions{.fortis = true});
  auto content = v_->ReadFile("/d/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 1234u);
  EXPECT_EQ((*content)[0], 'f');
}

TEST_F(NovaFsTest, FortisFlagMismatchRejectedAtMount) {
  Make(NovaOptions{.fortis = true});
  NovaFs plain(pm_.get(), NovaOptions{.fortis = false});
  EXPECT_EQ(plain.Mount().code(), ErrorCode::kCorruption);
}

TEST_F(NovaFsTest, FortisDetectsTornInodeTableBit) {
  Make(NovaOptions{.fortis = true});
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  // Corrupt the primary inode of /f behind the file system's back.
  auto ino = fs_->Lookup(fs_->RootIno(), "f");
  ASSERT_TRUE(ino.ok());
  uint64_t off = novafs::InodeOff(static_cast<uint32_t>(*ino));
  pm_->RestoreRaw(off + novafs::kInoLogTail,
                  reinterpret_cast<const uint8_t*>("\xff\xff\xff\xff\xff\xff\xff\xff"),
                  8);
  Remount(NovaOptions{.fortis = true});
  EXPECT_EQ(v_->Stat("/f").status().code(), ErrorCode::kIo);
}

// Differential property test: novafs must match the reference FS under
// randomized workloads, across several seeds, with and without fortis.
struct DiffParam {
  uint64_t seed;
  bool fortis;
};

class NovaDifferential : public ::testing::TestWithParam<DiffParam> {};

TEST_P(NovaDifferential, MatchesReference) {
  pmem::PmDevice dev(kDevSize);
  pmem::Pm pm(&dev);
  NovaFs fs(&pm, NovaOptions{.fortis = GetParam().fortis});
  ASSERT_TRUE(fs.Mkfs().ok());
  ASSERT_TRUE(fs.Mount().ok());
  fs_test::RunDifferential(&fs, GetParam().seed, 250);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, NovaDifferential,
    ::testing::Values(DiffParam{1, false}, DiffParam{2, false},
                      DiffParam{3, false}, DiffParam{4, false},
                      DiffParam{5, true}, DiffParam{6, true},
                      DiffParam{7, true}, DiffParam{8, true}));

// Remount-equivalence property: after a random workload, remounting must
// reproduce the exact same visible state (DRAM rebuild == live state).
class NovaRemountEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NovaRemountEquivalence, RebuildMatchesLiveState) {
  pmem::PmDevice dev(kDevSize);
  pmem::Pm pm(&dev);
  NovaFs fs(&pm, {});
  ASSERT_TRUE(fs.Mkfs().ok());
  ASSERT_TRUE(fs.Mount().ok());
  vfs::Vfs v(&fs);
  common::Rng rng(GetParam());
  for (int i = 0; i < 120; ++i) {
    fs_test::RandOp op = fs_test::RandomOp(rng);
    std::string out;
    fs_test::ApplyOp(v, op, &out);
  }
  // Capture state, remount with a fresh object, recapture, compare.
  auto capture = [](vfs::Vfs& vv) {
    std::string dump;
    std::vector<std::string> stack = {"/"};
    while (!stack.empty()) {
      std::string p = stack.back();
      stack.pop_back();
      auto st = vv.Stat(p);
      if (!st.ok()) {
        dump += p + "!" + std::string(common::ErrorCodeName(st.status().code()));
        continue;
      }
      dump += p + ":t" + std::to_string(static_cast<int>(st->type)) + ":s" +
              std::to_string(st->size) + ":n" + std::to_string(st->nlink);
      if (st->type == vfs::FileType::kDirectory) {
        auto entries = vv.ReadDir(p);
        for (const auto& e : *entries) {
          stack.push_back(p == "/" ? "/" + e.name : p + "/" + e.name);
        }
      } else {
        auto content = vv.ReadFile(p);
        dump += ":c" + std::to_string(common::Crc32(content->data(),
                                                    content->size()));
      }
      dump += "\n";
    }
    return dump;
  };
  std::string live = capture(v);
  NovaFs fs2(&pm, {});
  ASSERT_TRUE(fs2.Mount().ok());
  vfs::Vfs v2(&fs2);
  EXPECT_EQ(capture(v2), live);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NovaRemountEquivalence,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace

TEST_F(NovaFsTest, XattrsNotSupported) {
  // §4.1: setxattr/removexattr are only in the ext4-DAX/XFS-DAX test set;
  // the PM-native systems reject them.
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  EXPECT_EQ(v_->SetXattr("/f", "user.x", {1}).code(),
            common::ErrorCode::kNotSupported);
  EXPECT_EQ(v_->ListXattrs("/f").status().code(),
            common::ErrorCode::kNotSupported);
}
