// Coordinator tests: the wire protocol's framing and poisoning rules, the
// coordinator's lease state machine driven by fake in-test clients over the
// real Unix-domain socket (grant / heartbeat-timeout revocation / stale-epoch
// rejection / poisoned-lease quarantine), and the end-to-end invariant that a
// campaign run through coordinator-issued leases folds to the same result as
// the single-process LocalScheduler partition — including after interruption
// and resume.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/coord/campaign_runner.h"
#include "src/coord/coordinator.h"
#include "src/coord/lease_client.h"
#include "src/coord/protocol.h"
#include "src/core/fs_registry.h"
#include "src/core/quarantine.h"
#include "src/fuzz/fuzz_engine.h"
#include "src/vfs/bug.h"

namespace {

namespace fs = std::filesystem;

using coord::Coordinator;
using coord::CoordinatorOptions;
using coord::CoordinatorOutcome;
using coord::FrameReader;
using coord::Message;
using coord::MsgType;
using fuzz::FuzzEngine;
using fuzz::FuzzOptions;

constexpr size_t kDev = 1024 * 1024;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("chipmunk-coord-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// --- protocol framing ------------------------------------------------------

Message SampleMessage() {
  Message m;
  m.type = MsgType::kLeaseDone;
  m.worker_slot = 3;
  m.lease_id = 7;
  m.epoch = 2;
  m.begin = 224;
  m.end = 256;
  m.committed = 32;
  m.crash_states = 1234;
  m.states_deduped = 99;
  m.accepted = 1;
  m.text = "hello, coordinator";
  return m;
}

void ExpectSameMessage(const Message& a, const Message& b) {
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(static_cast<int>(a.type), static_cast<int>(b.type));
  EXPECT_EQ(a.worker_slot, b.worker_slot);
  EXPECT_EQ(a.lease_id, b.lease_id);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.begin, b.begin);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.crash_states, b.crash_states);
  EXPECT_EQ(a.states_deduped, b.states_deduped);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.text, b.text);
}

TEST(ProtocolTest, RoundTripPreservesEveryField) {
  const Message sent = SampleMessage();
  const std::string frame = coord::EncodeFrame(sent);

  FrameReader reader;
  reader.Feed(frame.data(), frame.size());
  Message got;
  std::string why;
  ASSERT_EQ(reader.Next(&got, &why), FrameReader::Result::kMessage) << why;
  ExpectSameMessage(sent, got);
  EXPECT_EQ(reader.Next(&got, &why), FrameReader::Result::kNeedMore);
}

TEST(ProtocolTest, TornByteAtATimeFeedsNeedMoreUntilComplete) {
  const Message sent = SampleMessage();
  const std::string frame = coord::EncodeFrame(sent);

  FrameReader reader;
  Message got;
  std::string why;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.Feed(frame.data() + i, 1);
    ASSERT_EQ(reader.Next(&got, &why), FrameReader::Result::kNeedMore)
        << "message surfaced after " << (i + 1) << " of " << frame.size()
        << " bytes";
  }
  reader.Feed(frame.data() + frame.size() - 1, 1);
  ASSERT_EQ(reader.Next(&got, &why), FrameReader::Result::kMessage) << why;
  ExpectSameMessage(sent, got);
}

TEST(ProtocolTest, BackToBackFramesDecodeInOrder) {
  Message first = SampleMessage();
  Message second = SampleMessage();
  second.type = MsgType::kHeartbeat;
  second.lease_id = 8;
  second.text.clear();
  const std::string bytes =
      coord::EncodeFrame(first) + coord::EncodeFrame(second);

  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  Message got;
  std::string why;
  ASSERT_EQ(reader.Next(&got, &why), FrameReader::Result::kMessage) << why;
  ExpectSameMessage(first, got);
  ASSERT_EQ(reader.Next(&got, &why), FrameReader::Result::kMessage) << why;
  ExpectSameMessage(second, got);
  EXPECT_EQ(reader.Next(&got, &why), FrameReader::Result::kNeedMore);
}

TEST(ProtocolTest, UnknownVersionPoisonsTheStream) {
  Message bad = SampleMessage();
  bad.version = coord::kProtocolVersion + 1;
  const std::string frame = coord::EncodeFrame(bad);

  FrameReader reader;
  reader.Feed(frame.data(), frame.size());
  Message got;
  std::string why;
  ASSERT_EQ(reader.Next(&got, &why), FrameReader::Result::kError);
  EXPECT_NE(why.find("unsupported protocol version"), std::string::npos)
      << why;

  // Sticky: a perfectly valid frame after the poison still fails — the
  // stream is not resynchronized.
  const std::string good = coord::EncodeFrame(SampleMessage());
  reader.Feed(good.data(), good.size());
  why.clear();
  ASSERT_EQ(reader.Next(&got, &why), FrameReader::Result::kError);
  EXPECT_NE(why.find("unsupported protocol version"), std::string::npos)
      << why;
}

TEST(ProtocolTest, UnknownTypeRejected) {
  Message bad = SampleMessage();
  std::string frame = coord::EncodeFrame(bad);
  frame[4 + 1] = static_cast<char>(0xee);  // type byte, after len + version

  FrameReader reader;
  reader.Feed(frame.data(), frame.size());
  Message got;
  std::string why;
  ASSERT_EQ(reader.Next(&got, &why), FrameReader::Result::kError);
  EXPECT_NE(why.find("unknown message type"), std::string::npos) << why;
}

TEST(ProtocolTest, OversizedFrameLengthRejectedFromHeaderAlone) {
  // Only the 4-byte length header is fed: the limit check must fire before
  // any attempt to buffer the (absurd) payload.
  const uint32_t len = coord::kMaxFrameBytes + 1;
  char header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  FrameReader reader;
  reader.Feed(header, sizeof(header));
  Message got;
  std::string why;
  ASSERT_EQ(reader.Next(&got, &why), FrameReader::Result::kError);
  EXPECT_NE(why.find("exceeds limit"), std::string::npos) << why;
}

TEST(ProtocolTest, ShortPayloadRejected) {
  const uint32_t len = 10;  // below the fixed payload size
  std::string frame;
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  frame.append(10, '\0');
  FrameReader reader;
  reader.Feed(frame.data(), frame.size());
  Message got;
  std::string why;
  ASSERT_EQ(reader.Next(&got, &why), FrameReader::Result::kError);
  EXPECT_NE(why.find("below minimum payload"), std::string::npos) << why;
}

TEST(ProtocolTest, TextLengthDisagreeingWithFrameLengthRejected) {
  Message m = SampleMessage();
  std::string frame = coord::EncodeFrame(m);
  // The u64 text_len sits 8 bytes from the payload end (text is last).
  const size_t text_len_off = frame.size() - m.text.size() - 8;
  frame[text_len_off] = static_cast<char>(m.text.size() + 1);

  FrameReader reader;
  reader.Feed(frame.data(), frame.size());
  Message got;
  std::string why;
  ASSERT_EQ(reader.Next(&got, &why), FrameReader::Result::kError);
  EXPECT_NE(why.find("text length disagrees"), std::string::npos) << why;
}

// --- coordinator state machine (fake clients over the real socket) ---------

// A raw protocol client: connects to the coordinator socket and speaks
// frames directly, so tests can violate the rules (skip heartbeats, send
// stale epochs, duplicate completions) in ways LeaseScheduler never would.
class FakeClient {
 public:
  explicit FakeClient(const std::string& socket_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    EXPECT_LT(socket_path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
  }

  ~FakeClient() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void Send(const Message& m) {
    const common::Status st = coord::WriteFrame(fd_, m);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  Message Read() {
    auto m = coord::ReadFrame(fd_, &reader_);
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    return m.ok() ? *m : Message{};
  }

  void Hello(uint32_t slot) {
    Message m;
    m.type = MsgType::kHello;
    m.worker_slot = slot;
    Send(m);
  }

  // Sends a lease request and blocks for the coordinator's reply (a grant,
  // or kNoWork once the campaign is resolved or draining).
  Message RequestLease() {
    Message m;
    m.type = MsgType::kLeaseRequest;
    Send(m);
    return Read();
  }

  void SendDone(uint64_t lease_id, uint64_t epoch, uint64_t committed) {
    Message m;
    m.type = MsgType::kLeaseDone;
    m.lease_id = lease_id;
    m.epoch = epoch;
    m.committed = committed;
    Send(m);
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

// Runs a coordinator's event loop on a background thread. Tests drive the
// drain with RequestStop(); destroying the harness closes every connection,
// which unblocks any client still parked on a read.
class CoordinatorHarness {
 public:
  explicit CoordinatorHarness(CoordinatorOptions options)
      : coordinator_(std::move(options)) {}

  ~CoordinatorHarness() {
    if (thread_.joinable()) {
      coordinator_.RequestStop();
      thread_.join();
    }
  }

  common::Status Start() {
    common::Status st = coordinator_.Init();
    if (!st.ok()) {
      return st;
    }
    thread_ = std::thread([this] { outcome_ = coordinator_.Run(); });
    return common::OkStatus();
  }

  common::StatusOr<CoordinatorOutcome> Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
    return outcome_;
  }

  Coordinator& coordinator() { return coordinator_; }
  std::string socket() const { return coordinator_.socket_path(); }

 private:
  Coordinator coordinator_;
  std::thread thread_;
  common::StatusOr<CoordinatorOutcome> outcome_ =
      common::Internal("coordinator never ran");
};

// Polls the coordinator's stats endpoint until the text contains `needle`.
// Returns the matching snapshot; fails the test on timeout.
std::string WaitForStats(const std::string& socket_path,
                         const std::string& needle) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::string last;
  while (std::chrono::steady_clock::now() < deadline) {
    auto text = coord::FetchCoordinatorStats(socket_path);
    if (text.ok()) {
      last = *text;
      if (last.find(needle) != std::string::npos) {
        return last;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "stats never contained '" << needle << "'; last:\n" << last;
  return last;
}

CoordinatorOptions BaseCoordinatorOptions(const std::string& root,
                                          uint64_t total,
                                          uint64_t lease_size) {
  CoordinatorOptions o;
  o.root = root;
  o.total = total;
  o.lease_size = lease_size;
  o.workers = 0;  // tests connect their own clients
  o.heartbeat_ms = 60000;  // effectively off unless a test dials it down
  o.verbose = false;
  return o;
}

TEST(CoordinatorTest, GrantHeartbeatCompleteDuplicateAckAndDrain) {
  const std::string root = FreshDir("lifecycle");
  CoordinatorHarness h(BaseCoordinatorOptions(root, 64, 32));
  ASSERT_TRUE(h.Start().ok());

  FakeClient c(h.socket());
  c.Hello(7);
  Message grant = c.RequestLease();
  ASSERT_EQ(static_cast<int>(grant.type),
            static_cast<int>(MsgType::kLeaseGrant));
  EXPECT_EQ(grant.lease_id, 0u);
  EXPECT_EQ(grant.epoch, 1u);
  EXPECT_EQ(grant.begin, 0u);
  EXPECT_EQ(grant.end, 32u);

  Message hb;
  hb.type = MsgType::kHeartbeat;
  hb.lease_id = 0;
  hb.epoch = 1;
  hb.committed = 5;
  c.Send(hb);

  c.SendDone(0, 1, 32);
  Message ack = c.Read();
  ASSERT_EQ(static_cast<int>(ack.type), static_cast<int>(MsgType::kDoneAck));
  EXPECT_EQ(ack.accepted, 1u);

  // Retransmit after a (hypothetically) lost ack: idempotent accept.
  c.SendDone(0, 1, 32);
  ack = c.Read();
  EXPECT_EQ(ack.accepted, 1u);

  // Same lease, wrong epoch: stale, rejected.
  c.SendDone(0, 99, 32);
  ack = c.Read();
  EXPECT_EQ(ack.accepted, 0u);

  const std::string stats = WaitForStats(h.socket(), "1 complete");
  EXPECT_NE(stats.find("leases: 2 total, 1 complete"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("32 of 64 workloads committed"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find(
                "worker 7: 1 lease(s) granted, 1 completed, 1 heartbeat(s)"),
            std::string::npos)
      << stats;

  // A second worker takes lease 1 and holds it across the drain — the
  // in-flight grant is what keeps the coordinator alive while we probe the
  // draining behavior.
  FakeClient holder(h.socket());
  holder.Hello(8);
  Message grant1 = holder.RequestLease();
  ASSERT_EQ(static_cast<int>(grant1.type),
            static_cast<int>(MsgType::kLeaseGrant));
  EXPECT_EQ(grant1.lease_id, 1u);

  // Drain: once the coordinator confirms it, a lease request gets kNoWork.
  h.coordinator().RequestStop();
  WaitForStats(h.socket(), "draining");
  Message no_work = c.RequestLease();
  EXPECT_EQ(static_cast<int>(no_work.type),
            static_cast<int>(MsgType::kNoWork));

  // The holder disconnects without finishing: its grant is revoked, nothing
  // is granted anymore, and the drain completes.
  holder.Close();
  c.Close();
  auto outcome = h.Join();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->drained_early);
  EXPECT_EQ(outcome->leases_total, 2u);
  EXPECT_EQ(outcome->leases_complete, 1u);
  EXPECT_EQ(outcome->lease_revocations, 1u);
  EXPECT_EQ(outcome->leases_poisoned, 0u);
  EXPECT_FALSE(outcome->folded);  // fake clients wrote no lease stores
}

TEST(CoordinatorTest, HeartbeatTimeoutRevokesReissuesAndRejectsLateDone) {
  const std::string root = FreshDir("hb-timeout");
  CoordinatorOptions options = BaseCoordinatorOptions(root, 64, 32);
  options.heartbeat_ms = 250;
  options.max_lease_failures = 5;
  CoordinatorHarness h(options);
  ASSERT_TRUE(h.Start().ok());

  // The hung worker: acquires lease 0 and never heartbeats.
  FakeClient hung(h.socket());
  hung.Hello(0);
  Message grant = hung.RequestLease();
  ASSERT_EQ(static_cast<int>(grant.type),
            static_cast<int>(MsgType::kLeaseGrant));
  EXPECT_EQ(grant.lease_id, 0u);
  EXPECT_EQ(grant.epoch, 1u);

  // The timeout sweep revokes the silent lease; the hung client's
  // connection stays open (it is not a managed worker, so nothing to kill).
  WaitForStats(h.socket(), "1 revocations");

  // A healthy worker picks the lease back up under a fresh epoch.
  FakeClient healthy(h.socket());
  healthy.Hello(1);
  Message regrant = healthy.RequestLease();
  ASSERT_EQ(static_cast<int>(regrant.type),
            static_cast<int>(MsgType::kLeaseGrant));
  EXPECT_EQ(regrant.lease_id, 0u);
  EXPECT_EQ(regrant.epoch, 2u);
  EXPECT_EQ(regrant.begin, 0u);
  healthy.SendDone(0, 2, 32);
  Message ack = healthy.Read();
  EXPECT_EQ(ack.accepted, 1u);

  // The race: the revoked holder wakes up and reports its (superseded)
  // completion with the old epoch. Rejected — its store bytes lost.
  hung.SendDone(0, 1, 32);
  ack = hung.Read();
  ASSERT_EQ(static_cast<int>(ack.type), static_cast<int>(MsgType::kDoneAck));
  EXPECT_EQ(ack.accepted, 0u);

  // Nothing is granted anymore (lease 0 complete, lease 1 pending), so the
  // drain finishes immediately.
  h.coordinator().RequestStop();
  auto outcome = h.Join();
  hung.Close();
  healthy.Close();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->lease_revocations, 1u);
  EXPECT_EQ(outcome->leases_complete, 1u);
  EXPECT_EQ(outcome->leases_poisoned, 0u);
  EXPECT_TRUE(outcome->drained_early);
}

TEST(CoordinatorTest, RepeatedFailuresPoisonLeaseIntoQuarantine) {
  const std::string root = FreshDir("poison");
  CoordinatorOptions options = BaseCoordinatorOptions(root, 4, 4);
  options.max_lease_failures = 2;
  options.poison_entry = [](uint64_t ordinal) {
    chipmunk::QuarantineEntry entry;
    entry.kind = "workload";
    entry.fs = "novafs";
    entry.bugs = "1,3";
    entry.device_size = kDev;
    entry.ordinal = ordinal;
    entry.workload.name = "poisoned-" + std::to_string(ordinal);
    entry.detail = "lease poisoned in test";
    return entry;
  };
  CoordinatorHarness h(options);
  ASSERT_TRUE(h.Start().ok());

  // The always-crashing lease: every holder disconnects mid-grant. After
  // max_lease_failures grants the coordinator gives up on the range.
  for (uint64_t attempt = 1; attempt <= 2; ++attempt) {
    FakeClient crasher(h.socket());
    crasher.Hello(0);
    Message grant = crasher.RequestLease();
    ASSERT_EQ(static_cast<int>(grant.type),
              static_cast<int>(MsgType::kLeaseGrant));
    EXPECT_EQ(grant.lease_id, 0u);
    EXPECT_EQ(grant.epoch, attempt);
    crasher.Close();  // worker "crash": disconnect revokes the grant
  }

  // Poisoning resolves the only lease, so the coordinator exits on its own.
  auto outcome = h.Join();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->drained_early);
  EXPECT_EQ(outcome->lease_revocations, 2u);
  EXPECT_EQ(outcome->leases_poisoned, 1u);
  EXPECT_EQ(outcome->leases_complete, 0u);
  EXPECT_EQ(outcome->ordinals_quarantined, 4u);
  EXPECT_FALSE(outcome->folded);

  // Every ordinal of the poisoned lease landed in quarantine, stamped with
  // the lease it came from.
  std::set<uint64_t> ordinals;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(root) / "quarantine")) {
    auto read = chipmunk::ReadQuarantineEntry(entry.path().string());
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(read->kind, "workload");
    EXPECT_EQ(read->fs, "novafs");
    EXPECT_EQ(read->lease, "lease-0");
    EXPECT_EQ(read->detail, "lease poisoned in test");
    ordinals.insert(read->ordinal);
  }
  EXPECT_EQ(ordinals, (std::set<uint64_t>{0, 1, 2, 3}));
}

// --- lease-partitioned execution: determinism, skip, resume ---------------

chipmunk::FsConfig BuggyConfig() {
  vfs::BugSet bugs;
  bugs.Enable(vfs::BugId::kNova1LogPageInitOrder);
  bugs.Enable(vfs::BugId::kNova3TailOverrun);
  auto config = chipmunk::MakeFsConfig("novafs", bugs, kDev);
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  return *config;
}

constexpr uint64_t kTotal = 20;
constexpr uint64_t kLease = 8;

FuzzOptions LeaseBaseOptions() {
  FuzzOptions o;
  o.seed = 7;
  o.iterations = kTotal;
  o.checkpoint_interval = 5;
  return o;
}

coord::LeaseRunnerOptions RunnerOptions(const std::string& root,
                                        const chipmunk::FsConfig& config,
                                        const FuzzOptions& base) {
  coord::LeaseRunnerOptions o;
  o.root = root;
  o.base = base;
  o.make_driver = [config](const fuzz::CampaignOptions& opt) {
    return std::unique_ptr<fuzz::CampaignDriver>(new FuzzEngine(config, opt));
  };
  return o;
}

// Deterministic merge equality, modulo wall/CPU time: the folded campaign is
// a pure function of (campaign identity, lease partition), so every field
// that is not a clock must match exactly.
void ExpectSameMerge(const fuzz::CampaignMergeResult& a,
                     const fuzz::CampaignMergeResult& b) {
  std::string why;
  EXPECT_TRUE(a.meta.CompatibleWith(b.meta, &why)) << why;
  EXPECT_EQ(a.same_campaign, b.same_campaign);
  EXPECT_EQ(a.index, b.index);

  const store::CampaignState& x = a.state;
  const store::CampaignState& y = b.state;
  EXPECT_EQ(x.committed, y.committed);
  EXPECT_EQ(x.executed, y.executed);
  EXPECT_EQ(x.crash_states, y.crash_states);
  EXPECT_EQ(x.states_deduped, y.states_deduped);
  EXPECT_EQ(x.states_pruned, y.states_pruned);
  EXPECT_EQ(x.replay_failures, y.replay_failures);
  EXPECT_EQ(x.replay_retries, y.replay_retries);
  EXPECT_EQ(x.workloads_quarantined, y.workloads_quarantined);
  EXPECT_EQ(x.states_quarantined, y.states_quarantined);
  EXPECT_EQ(x.lint_findings, y.lint_findings);
  EXPECT_EQ(x.hb_findings, y.hb_findings);
  EXPECT_EQ(x.lint_rule_counts, y.lint_rule_counts);
  EXPECT_EQ(x.hb_rule_counts, y.hb_rule_counts);
  EXPECT_EQ(x.report_hits, y.report_hits);
  EXPECT_EQ(x.admitted, y.admitted);
  ASSERT_EQ(x.unique_reports.size(), y.unique_reports.size());
  for (size_t i = 0; i < x.unique_reports.size(); ++i) {
    EXPECT_EQ(x.unique_reports[i].ToString(), y.unique_reports[i].ToString());
  }
  ASSERT_EQ(x.timeline.size(), y.timeline.size());
  for (size_t i = 0; i < x.timeline.size(); ++i) {
    EXPECT_EQ(x.timeline[i].ordinal, y.timeline[i].ordinal);
    EXPECT_EQ(x.timeline[i].signature, y.timeline[i].signature);
  }
  ASSERT_EQ(x.corpus.size(), y.corpus.size());
  for (size_t i = 0; i < x.corpus.size(); ++i) {
    EXPECT_EQ(x.corpus[i].name, y.corpus[i].name);
    EXPECT_EQ(x.corpus[i].text, y.corpus[i].text);
  }
}

// Wraps LocalScheduler and trips a graceful-stop flag after `after`
// heartbeats (= commits, since the runner heartbeats at every commit
// barrier) — an in-process model of SIGTERM landing mid-lease.
class StopAfterScheduler : public fuzz::OrdinalScheduler {
 public:
  StopAfterScheduler(uint64_t total, uint64_t lease_size,
                     std::atomic<bool>* stop, size_t after)
      : inner_(total, lease_size), stop_(stop), after_(after) {}

  std::optional<fuzz::OrdinalLease> Acquire() override {
    return inner_.Acquire();
  }
  void Heartbeat(const fuzz::OrdinalLease& lease,
                 const fuzz::LeaseProgress& progress) override {
    if (++beats_ >= after_) {
      stop_->store(true);
    }
    inner_.Heartbeat(lease, progress);
  }
  bool Complete(const fuzz::OrdinalLease& lease,
                const fuzz::LeaseProgress& progress) override {
    return inner_.Complete(lease, progress);
  }

 private:
  fuzz::LocalScheduler inner_;
  std::atomic<bool>* stop_;
  size_t after_;
  size_t beats_ = 0;
};

TEST(LeaseRunnerTest, CoordinatedWorkerMatchesLocalFoldAndSkipsComplete) {
  const chipmunk::FsConfig config = BuggyConfig();
  const FuzzOptions base = LeaseBaseOptions();

  // Baseline: the single-process lease partition.
  const std::string local_root = FreshDir("local");
  fuzz::LocalScheduler local(kTotal, kLease);
  auto local_run = coord::RunLeases(local, RunnerOptions(local_root, config,
                                                         base));
  ASSERT_TRUE(local_run.ok()) << local_run.status().ToString();
  EXPECT_EQ(local_run->leases_run, 3u);
  EXPECT_EQ(local_run->leases_resumed, 0u);
  EXPECT_FALSE(local_run->interrupted);
  auto local_fold = coord::FoldLeases(local_root, kTotal);
  ASSERT_TRUE(local_fold.ok()) << local_fold.status().ToString();
  EXPECT_EQ(local_fold->state.committed, kTotal);

  // Skip-complete (lost ack / coordinator restart): re-running the same
  // partition over finished stores verifies and reports them without
  // executing anything, and the fold is unchanged.
  fuzz::LocalScheduler again(kTotal, kLease);
  auto rerun = coord::RunLeases(again, RunnerOptions(local_root, config,
                                                     base));
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->leases_run, 3u);
  EXPECT_EQ(rerun->leases_resumed, 0u);
  auto refold = coord::FoldLeases(local_root, kTotal);
  ASSERT_TRUE(refold.ok()) << refold.status().ToString();
  ExpectSameMerge(*local_fold, *refold);

  // The same campaign run through a coordinator-issued LeaseScheduler.
  const std::string coord_root = FreshDir("coordinated");
  auto h = std::make_unique<CoordinatorHarness>(
      BaseCoordinatorOptions(coord_root, kTotal, kLease));
  ASSERT_TRUE(h->Start().ok());
  std::thread worker([&] {
    auto scheduler = coord::LeaseScheduler::Connect(h->socket(), 0, 60000);
    EXPECT_TRUE(scheduler.ok()) << scheduler.status().ToString();
    if (!scheduler.ok()) {
      return;
    }
    auto run = coord::RunLeases(**scheduler,
                                RunnerOptions(coord_root, config, base));
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    if (run.ok()) {
      EXPECT_EQ(run->leases_run, 3u);
      EXPECT_FALSE(run->interrupted);
    }
  });
  auto outcome = h->Join();
  h.reset();  // closes the socket, unblocking the worker's final Acquire
  worker.join();

  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->drained_early);
  EXPECT_EQ(outcome->leases_complete, 3u);
  EXPECT_EQ(outcome->lease_revocations, 0u);
  ASSERT_TRUE(outcome->folded);
  ExpectSameMerge(*local_fold, outcome->merged);
}

TEST(LeaseRunnerTest, InterruptedRunResumesToIdenticalFold) {
  const chipmunk::FsConfig config = BuggyConfig();

  // A small lookahead so a stop can land mid-lease: with the default 16,
  // every workload of an 8-ordinal lease is in flight before the first
  // commit, and the drain always finishes the lease. Lookahead is part of
  // the campaign identity, so the whole partition — baseline, interrupted
  // run, and resume — must agree on it.
  FuzzOptions base = LeaseBaseOptions();
  base.lookahead = 2;

  // The uninterrupted baseline partition.
  const std::string base_root = FreshDir("resume-base");
  fuzz::LocalScheduler baseline(kTotal, kLease);
  auto base_run = coord::RunLeases(baseline,
                                   RunnerOptions(base_root, config, base));
  ASSERT_TRUE(base_run.ok()) << base_run.status().ToString();
  auto base_fold = coord::FoldLeases(base_root, kTotal);
  ASSERT_TRUE(base_fold.ok()) << base_fold.status().ToString();

  // Interrupted: a graceful stop lands after 3 commits, mid-lease-0. The
  // runner checkpoints the partial lease store and reports interrupted.
  const std::string root = FreshDir("resume");
  std::atomic<bool> stop{false};
  FuzzOptions stopping = base;
  stopping.stop = &stop;
  StopAfterScheduler stopper(kTotal, kLease, &stop, 3);
  auto first = coord::RunLeases(stopper, RunnerOptions(root, config,
                                                       stopping));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->interrupted);
  EXPECT_TRUE(stop.load());
  EXPECT_TRUE(fs::exists(fs::path(coord::LeaseDir(root, 0)) / "meta.txt"));
  // The stop landed before the lease finished: its store is a strict
  // prefix, which is what makes the rerun below a real resume.
  EXPECT_FALSE(coord::LeaseComplete(coord::LeaseDir(root, 0), 0, kLease));

  // Resume: a fresh scheduler reissues every unfinished lease; lease 0
  // continues from its checkpointed prefix instead of starting over.
  fuzz::LocalScheduler second(kTotal, kLease);
  auto resumed = coord::RunLeases(second, RunnerOptions(root, config, base));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->interrupted);
  EXPECT_EQ(resumed->leases_run, 3u);
  EXPECT_EQ(resumed->leases_resumed, 1u);

  auto fold = coord::FoldLeases(root, kTotal);
  ASSERT_TRUE(fold.ok()) << fold.status().ToString();
  ExpectSameMerge(*base_fold, *fold);
}

}  // namespace
