// SplitFS-specific unit tests: the staging/op-log data path, overlay reads,
// relinking, rename's op-log protocol, and crash recovery via op-log replay.
#include <gtest/gtest.h>

#include <memory>

#include "src/fs/splitfs/splitfs.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "src/vfs/vfs.h"

namespace {

using common::ErrorCode;
using splitfs::SplitFs;
using splitfs::SplitOptions;
using vfs::OpenFlags;

constexpr size_t kDevSize = 2 * 1024 * 1024;

class SplitFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<pmem::PmDevice>(kDevSize);
    pm_ = std::make_unique<pmem::Pm>(dev_.get());
    fs_ = std::make_unique<SplitFs>(pm_.get(), SplitOptions{});
    ASSERT_TRUE(fs_->Mkfs().ok());
    ASSERT_TRUE(fs_->Mount().ok());
    v_ = std::make_unique<vfs::Vfs>(fs_.get());
  }

  // Crash: fresh instance, no unmount (no relink) — recovery must rebuild
  // the overlay from the op-log.
  void CrashRemount() {
    fs_ = std::make_unique<SplitFs>(pm_.get(), SplitOptions{});
    common::Status st = fs_->Mount();
    ASSERT_TRUE(st.ok()) << st.ToString();
    v_ = std::make_unique<vfs::Vfs>(fs_.get());
  }

  std::unique_ptr<pmem::PmDevice> dev_;
  std::unique_ptr<pmem::Pm> pm_;
  std::unique_ptr<SplitFs> fs_;
  std::unique_ptr<vfs::Vfs> v_;
};

TEST_F(SplitFsTest, StrictModeGuarantees) {
  EXPECT_TRUE(fs_->Guarantees().synchronous);
  EXPECT_TRUE(fs_->Guarantees().atomic_metadata);
  EXPECT_TRUE(fs_->Guarantees().atomic_write);
}

TEST_F(SplitFsTest, StagedWriteSurvivesCrashViaOplogReplay) {
  // Unlike ext4dax, splitfs writes are synchronous: a crash immediately
  // after the syscall must preserve the data (served from the staging
  // region through the recovered overlay).
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(5000, 's');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  CrashRemount();
  auto content = v_->ReadFile("/f");
  ASSERT_TRUE(content.ok());
  ASSERT_EQ(content->size(), 5000u);
  EXPECT_EQ((*content)[4999], 's');
}

TEST_F(SplitFsTest, OverlayComposesMultipleWritesInOrder) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> a(3000, 'a');
  ASSERT_TRUE(v_->Pwrite(*fd, a.data(), a.size(), 0).ok());
  std::vector<uint8_t> b(1000, 'b');
  ASSERT_TRUE(v_->Pwrite(*fd, b.data(), b.size(), 500).ok());
  std::vector<uint8_t> c(100, 'c');
  ASSERT_TRUE(v_->Pwrite(*fd, c.data(), c.size(), 900).ok());
  CrashRemount();
  auto content = v_->ReadFile("/f");
  ASSERT_EQ(content->size(), 3000u);
  EXPECT_EQ((*content)[499], 'a');
  EXPECT_EQ((*content)[500], 'b');
  EXPECT_EQ((*content)[899], 'b');
  EXPECT_EQ((*content)[900], 'c');
  EXPECT_EQ((*content)[999], 'c');
  EXPECT_EQ((*content)[1000], 'b');
  EXPECT_EQ((*content)[1500], 'a');
}

TEST_F(SplitFsTest, MetadataOpsAreSynchronous) {
  ASSERT_TRUE(v_->Mkdir("/d").ok());
  ASSERT_TRUE(v_->Open("/d/f", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Link("/d/f", "/d/g").ok());
  CrashRemount();
  EXPECT_TRUE(v_->Stat("/d").ok());
  EXPECT_EQ(v_->Stat("/d/f")->nlink, 2u);
}

TEST_F(SplitFsTest, FsyncRelinksIntoKernelFs) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(5000, 'r');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->FsyncFd(*fd).ok());  // relink: data moves into ext4
  CrashRemount();
  auto content = v_->ReadFile("/f");
  ASSERT_EQ(content->size(), 5000u);
  EXPECT_EQ((*content)[0], 'r');
}

TEST_F(SplitFsTest, TruncateDropsStagedTail) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(5000, 't');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->Truncate("/f", 1234).ok());
  CrashRemount();
  auto content = v_->ReadFile("/f");
  ASSERT_EQ(content->size(), 1234u);
  EXPECT_EQ((*content)[1233], 't');
}

TEST_F(SplitFsTest, UnlinkOfStagedFileDropsEverything) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(5000, 'u');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->Close(*fd).ok());
  ASSERT_TRUE(v_->Unlink("/f").ok());
  CrashRemount();
  EXPECT_EQ(v_->Stat("/f").status().code(), ErrorCode::kNotFound);
}

TEST_F(SplitFsTest, RenameIsSynchronousAndAtomic) {
  auto fd = v_->Open("/old", OpenFlags{.create = true});
  uint8_t b = 'q';
  ASSERT_TRUE(v_->Write(*fd, &b, 1).ok());
  ASSERT_TRUE(v_->Close(*fd).ok());
  ASSERT_TRUE(v_->Rename("/old", "/new").ok());
  CrashRemount();
  EXPECT_FALSE(v_->Stat("/old").ok());
  auto content = v_->ReadFile("/new");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ((*content)[0], 'q');
}

TEST_F(SplitFsTest, ManyWritesTriggerRelinkAndStayCorrect) {
  // Exceed the staging region so the implicit relink path runs.
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> chunk(8192);
  for (int i = 0; i < 48; ++i) {
    for (size_t j = 0; j < chunk.size(); ++j) {
      chunk[j] = static_cast<uint8_t>('a' + (i + j) % 23);
    }
    ASSERT_TRUE(v_->Pwrite(*fd, chunk.data(), chunk.size(), i * 4096).ok())
        << "write " << i;
  }
  CrashRemount();
  auto st = v_->Stat("/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 47u * 4096 + 8192);
}

TEST_F(SplitFsTest, OplogGenerationRetiresOldEntries) {
  // Stage a write, relink (fsync), then crash: the op-log entries from the
  // old generation must NOT replay (the data now lives in ext4; replaying a
  // stale size_after entry would corrupt a later truncate).
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(5000, 'g');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->FsyncFd(*fd).ok());
  ASSERT_TRUE(v_->Truncate("/f", 100).ok());
  CrashRemount();
  EXPECT_EQ(v_->Stat("/f")->size, 100u);
}

TEST_F(SplitFsTest, WriteLargerThanStagingRejected) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> huge(splitfs::kStagingBytes + 4096, 'h');
  EXPECT_EQ(v_->Pwrite(*fd, huge.data(), huge.size(), 0).status().code(),
            ErrorCode::kNoSpace);
}

TEST_F(SplitFsTest, OpenHandleCountingTracksOpens) {
  auto a = v_->Open("/f", OpenFlags{.create = true});
  auto b = v_->Open("/f", OpenFlags{});
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(v_->Close(*a).ok());
  ASSERT_TRUE(v_->Close(*b).ok());
  // With all handles closed and the (fixed) code paths, writes behave
  // identically to the single-handle case.
  auto c = v_->Open("/f", OpenFlags{});
  std::vector<uint8_t> data(100, 'o');
  ASSERT_TRUE(v_->Pwrite(*c, data.data(), data.size(), 0).ok());
  CrashRemount();
  EXPECT_EQ(v_->Stat("/f")->size, 100u);
}

TEST_F(SplitFsTest, ReadCrossesStagedAndKernelData) {
  // First write relinked into ext4, second write staged: a read must stitch
  // both together.
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> a(4096, 'k');
  ASSERT_TRUE(v_->Pwrite(*fd, a.data(), a.size(), 0).ok());
  ASSERT_TRUE(v_->FsyncFd(*fd).ok());
  std::vector<uint8_t> b(100, 'v');
  ASSERT_TRUE(v_->Pwrite(*fd, b.data(), b.size(), 2000).ok());
  auto content = v_->ReadFile("/f");
  ASSERT_EQ(content->size(), 4096u);
  EXPECT_EQ((*content)[1999], 'k');
  EXPECT_EQ((*content)[2000], 'v');
  EXPECT_EQ((*content)[2099], 'v');
  EXPECT_EQ((*content)[2100], 'k');
}

}  // namespace
