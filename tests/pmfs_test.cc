// PMFS-specific unit tests: in-place update transactions, the undo journal,
// the truncate/orphan list, and pointer scrubbing.
#include <gtest/gtest.h>

#include <memory>

#include "src/fs/pmfs/layout.h"
#include "src/fs/pmfs/pmfs.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "src/vfs/vfs.h"

namespace {

using common::ErrorCode;
using pmfs::PmfsFs;
using pmfs::PmfsOptions;
using vfs::OpenFlags;

constexpr size_t kDevSize = 1024 * 1024;

class PmfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<pmem::PmDevice>(kDevSize);
    pm_ = std::make_unique<pmem::Pm>(dev_.get());
    fs_ = std::make_unique<PmfsFs>(pm_.get(), PmfsOptions{});
    ASSERT_TRUE(fs_->Mkfs().ok());
    ASSERT_TRUE(fs_->Mount().ok());
    v_ = std::make_unique<vfs::Vfs>(fs_.get());
  }

  void Remount() {
    fs_ = std::make_unique<PmfsFs>(pm_.get(), PmfsOptions{});
    common::Status st = fs_->Mount();
    ASSERT_TRUE(st.ok()) << st.ToString();
    v_ = std::make_unique<vfs::Vfs>(fs_.get());
  }

  std::unique_ptr<pmem::PmDevice> dev_;
  std::unique_ptr<pmem::Pm> pm_;
  std::unique_ptr<PmfsFs> fs_;
  std::unique_ptr<vfs::Vfs> v_;
};

TEST_F(PmfsTest, LayoutConstantsAreConsistent) {
  EXPECT_EQ(pmfs::kInodeSize * pmfs::kNumInodes,
            pmfs::kInodeTableBlocks * pmfs::kBlockSize);
  EXPECT_GE(pmfs::kJournalMaxEntries, 64u);
  EXPECT_EQ(pmfs::kDentriesPerBlock, 64u);
}

TEST_F(PmfsTest, CreateIsVisibleAfterRemount) {
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  Remount();
  EXPECT_TRUE(v_->Stat("/f").ok());
}

TEST_F(PmfsTest, WriteInPlaceOverwrites) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> a(5000, 'a');
  ASSERT_TRUE(v_->Pwrite(*fd, a.data(), a.size(), 0).ok());
  std::vector<uint8_t> b(100, 'b');
  ASSERT_TRUE(v_->Pwrite(*fd, b.data(), b.size(), 4090).ok());
  Remount();
  auto content = v_->ReadFile("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ((*content)[4089], 'a');
  EXPECT_EQ((*content)[4090], 'b');
  EXPECT_EQ((*content)[4190], 'a');
}

TEST_F(PmfsTest, IndirectBlockEngagesForLargeFiles) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  // kDirectPtrs blocks are direct; this offset needs the indirect block.
  uint64_t off = (pmfs::kDirectPtrs + 3) * pmfs::kBlockSize;
  uint8_t b = 'i';
  ASSERT_TRUE(v_->Pwrite(*fd, &b, 1, off).ok());
  Remount();
  auto st = v_->Stat("/f");
  EXPECT_EQ(st->size, off + 1);
  std::vector<uint8_t> out(1);
  auto fd2 = v_->Open("/f", OpenFlags{});
  ASSERT_EQ(*v_->Pread(*fd2, out.data(), 1, off), 1u);
  EXPECT_EQ(out[0], 'i');
}

TEST_F(PmfsTest, FileTooLargeRejected) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  uint64_t off = pmfs::kMaxFileBlocks * pmfs::kBlockSize;
  uint8_t b = 'x';
  EXPECT_EQ(v_->Pwrite(*fd, &b, 1, off).status().code(), ErrorCode::kNoSpace);
}

TEST_F(PmfsTest, TruncateShrinkScrubsAndSurvivesRemount) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(9000, 'd');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->Truncate("/f", 2500).ok());
  Remount();
  auto content = v_->ReadFile("/f");
  ASSERT_EQ(content->size(), 2500u);
  EXPECT_EQ((*content)[2499], 'd');
  // Extend again: the scrubbed tail must read as zeros.
  ASSERT_TRUE(v_->Truncate("/f", 4096).ok());
  content = v_->ReadFile("/f");
  EXPECT_EQ((*content)[2500], 0);
  EXPECT_EQ((*content)[4095], 0);
}

TEST_F(PmfsTest, TruncateListIsEmptyAfterCleanOps) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(9000, 'd');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->Truncate("/f", 100).ok());
  ASSERT_TRUE(v_->Close(*fd).ok());
  ASSERT_TRUE(v_->Unlink("/f").ok());
  for (uint32_t slot = 0; slot < pmfs::kTruncListSlots; ++slot) {
    EXPECT_EQ(pm_->Load<uint64_t>(pmfs::TruncRecordOff(slot)), 0u)
        << "slot " << slot;
  }
}

TEST_F(PmfsTest, JournalIsInvalidAtRest) {
  ASSERT_TRUE(v_->Mkdir("/d").ok());
  ASSERT_TRUE(v_->Open("/d/f", OpenFlags{.create = true}).ok());
  EXPECT_EQ(pm_->Load<uint64_t>(pmfs::kJournalOff), 0u);
}

TEST_F(PmfsTest, JournalRollbackRestoresPartialTransaction) {
  // Simulate a crash mid-transaction: journal a fake two-word tx, apply only
  // one word, leave the journal valid, then remount.
  uint64_t addr_a = pmfs::InodeOff(200);  // scratch words in the inode table
  uint64_t addr_b = pmfs::InodeOff(201);
  pm_->StoreFlush<uint64_t>(addr_a, 0xAA00);  // low byte 0: inode stays invalid
  pm_->StoreFlush<uint64_t>(addr_b, 0xBB00);
  // Journal entries recording the old values.
  uint64_t base = pmfs::kJournalOff;
  pm_->Store<uint64_t>(base + 8, 2);
  pm_->Store<uint64_t>(base + 16, addr_a);
  pm_->Store<uint64_t>(base + 24, 0xAA00);
  pm_->Store<uint64_t>(base + 32, addr_b);
  pm_->Store<uint64_t>(base + 40, 0xBB00);
  pm_->FlushBuffer(base + 8, 40);
  pm_->Fence();
  pm_->StoreFlush<uint64_t>(base, 1);  // valid
  pm_->Fence();
  pm_->StoreFlush<uint64_t>(addr_a, 0x1100);  // partial apply, then "crash"
  Remount();
  EXPECT_EQ(pm_->Load<uint64_t>(addr_a), 0xAA00u);  // rolled back
  EXPECT_EQ(pm_->Load<uint64_t>(addr_b), 0xBB00u);
  EXPECT_EQ(pm_->Load<uint64_t>(base), 0u);  // journal cleared
}

TEST_F(PmfsTest, JournalWithExcessiveCountIsRejected) {
  pm_->StoreFlush<uint64_t>(pmfs::kJournalOff + 8, pmfs::kJournalMaxEntries + 9);
  pm_->StoreFlush<uint64_t>(pmfs::kJournalOff, 1);
  PmfsFs fs2(pm_.get(), PmfsOptions{});
  EXPECT_EQ(fs2.Mount().code(), ErrorCode::kCorruption);
}

TEST_F(PmfsTest, RenameReusesVictimSlot) {
  ASSERT_TRUE(v_->Open("/a", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Open("/b", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Rename("/a", "/b").ok());
  Remount();
  EXPECT_FALSE(v_->Stat("/a").ok());
  EXPECT_TRUE(v_->Stat("/b").ok());
  auto entries = v_->ReadDir("/");
  EXPECT_EQ(entries->size(), 1u);
}

TEST_F(PmfsTest, HardLinkCountsPersist) {
  ASSERT_TRUE(v_->Open("/a", OpenFlags{.create = true}).ok());
  ASSERT_TRUE(v_->Link("/a", "/b").ok());
  ASSERT_TRUE(v_->Link("/a", "/c").ok());
  Remount();
  EXPECT_EQ(v_->Stat("/a")->nlink, 3u);
  ASSERT_TRUE(v_->Unlink("/b").ok());
  Remount();
  EXPECT_EQ(v_->Stat("/c")->nlink, 2u);
}

TEST_F(PmfsTest, DirNlinkTracksSubdirs) {
  ASSERT_TRUE(v_->Mkdir("/d").ok());
  ASSERT_TRUE(v_->Mkdir("/d/e").ok());
  Remount();
  EXPECT_EQ(v_->Stat("/d")->nlink, 3u);
  ASSERT_TRUE(v_->Rmdir("/d/e").ok());
  Remount();
  EXPECT_EQ(v_->Stat("/d")->nlink, 2u);
}

TEST_F(PmfsTest, UnlinkReleasesBlocksForReuse) {
  // Fill a file, delete it, and verify the space is reusable.
  for (int round = 0; round < 5; ++round) {
    auto fd = v_->Open("/big", OpenFlags{.create = true});
    std::vector<uint8_t> data(40 * 1024, 'x');
    ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok())
        << "round " << round;
    ASSERT_TRUE(v_->Close(*fd).ok());
    ASSERT_TRUE(v_->Unlink("/big").ok());
  }
  Remount();
  EXPECT_TRUE(v_->ReadDir("/")->empty());
}

TEST_F(PmfsTest, MountDetectsDoubleReferencedBlock) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(4096, 'd');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  // Find /f's first block pointer and alias it from another inode's slot.
  auto ino = fs_->Lookup(fs_->RootIno(), "f");
  uint64_t ptr_addr = pmfs::InodeOff(static_cast<uint32_t>(*ino)) +
                      pmfs::kInoDirect;
  uint64_t block = pm_->Load<uint64_t>(ptr_addr);
  ASSERT_NE(block, 0u);
  ASSERT_TRUE(v_->Open("/g", OpenFlags{.create = true}).ok());
  auto gino = fs_->Lookup(fs_->RootIno(), "g");
  pm_->RestoreRaw(
      pmfs::InodeOff(static_cast<uint32_t>(*gino)) + pmfs::kInoDirect,
      reinterpret_cast<const uint8_t*>(&block), 8);
  PmfsFs fs2(pm_.get(), PmfsOptions{});
  EXPECT_EQ(fs2.Mount().code(), ErrorCode::kCorruption);
}

TEST_F(PmfsTest, MountDetectsDanglingDentry) {
  ASSERT_TRUE(v_->Open("/f", OpenFlags{.create = true}).ok());
  auto ino = fs_->Lookup(fs_->RootIno(), "f");
  // Invalidate the inode behind the directory entry's back.
  uint64_t zero = 0;
  pm_->RestoreRaw(pmfs::InodeOff(static_cast<uint32_t>(*ino)),
                  reinterpret_cast<const uint8_t*>(&zero), 8);
  PmfsFs fs2(pm_.get(), PmfsOptions{});
  EXPECT_EQ(fs2.Mount().code(), ErrorCode::kCorruption);
}

TEST_F(PmfsTest, WritesAreNotAtomicByContract) {
  EXPECT_FALSE(fs_->Guarantees().atomic_write);
  EXPECT_TRUE(fs_->Guarantees().synchronous);
  EXPECT_TRUE(fs_->Guarantees().atomic_metadata);
}

TEST_F(PmfsTest, PunchHoleZeroesInPlace) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  std::vector<uint8_t> data(8192, 'p');
  ASSERT_TRUE(v_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(v_->FallocateFd(*fd, vfs::kFallocPunchHole | vfs::kFallocKeepSize,
                              4000, 200)
                  .ok());
  Remount();
  auto content = v_->ReadFile("/f");
  EXPECT_EQ((*content)[3999], 'p');
  EXPECT_EQ((*content)[4000], 0);
  EXPECT_EQ((*content)[4199], 0);
  EXPECT_EQ((*content)[4200], 'p');
  EXPECT_EQ(content->size(), 8192u);
}

TEST_F(PmfsTest, SparseFileReadsZerosInHoles) {
  auto fd = v_->Open("/f", OpenFlags{.create = true});
  uint8_t b = 'z';
  ASSERT_TRUE(v_->Pwrite(*fd, &b, 1, 3 * pmfs::kBlockSize).ok());
  Remount();
  auto content = v_->ReadFile("/f");
  ASSERT_EQ(content->size(), 3 * pmfs::kBlockSize + 1);
  EXPECT_EQ((*content)[0], 0);
  EXPECT_EQ((*content)[3 * pmfs::kBlockSize], 'z');
}

}  // namespace
