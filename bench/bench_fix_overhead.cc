// Regenerates Observation 2's performance comparison: the cost of fixing
// the in-place-update bugs.
//
//   - Rename microbenchmark ("repeatedly overwrites a file using rename"):
//     NOVA with bugs 4+5 (in-place dentry invalidation) vs the fixed version
//     that journals the extra dentry-delete entry. The paper measured the
//     fix at ~25% slower on Optane.
//   - Link microbenchmark ("repeatedly creates links to a file"): NOVA with
//     bug 6 (in-place link-count patching, which needs an extra media read
//     to validate) vs the fixed append-only version. The paper measured the
//     fix ~7% FASTER on real PM because the in-place check reads the media;
//     on this simulator media reads are DRAM reads, so the wall-clock
//     direction is not expected to reproduce — the fence/flush counts per
//     operation (the dominant PM cost) are reported as counters.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "src/fs/novafs/nova_fs.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "src/vfs/vfs.h"

namespace {

constexpr size_t kDev = 4 * 1024 * 1024;

class PersistOpCounter : public pmem::PmHook {
 public:
  void OnFence() override { ++fences; }
  void OnFlush(uint64_t, const uint8_t*, size_t) override { ++flushes; }
  void OnWrite(uint64_t, const uint8_t*, const uint8_t*, size_t n,
               bool temporal) override {
    if (!temporal) {
      nt_bytes += n;
    }
  }
  uint64_t fences = 0;
  uint64_t flushes = 0;
  uint64_t nt_bytes = 0;
};

struct Instance {
  std::unique_ptr<pmem::PmDevice> dev;
  std::unique_ptr<pmem::Pm> pm;
  std::unique_ptr<novafs::NovaFs> fs;
  std::unique_ptr<vfs::Vfs> vfs;
  PersistOpCounter counter;

  explicit Instance(vfs::BugSet bugs) {
    dev = std::make_unique<pmem::PmDevice>(kDev);
    pm = std::make_unique<pmem::Pm>(dev.get());
    novafs::NovaOptions options;
    options.bugs = std::move(bugs);
    fs = std::make_unique<novafs::NovaFs>(pm.get(), options);
    (void)fs->Mkfs();
    (void)fs->Mount();
    vfs = std::make_unique<vfs::Vfs>(fs.get());
    pm->AddHook(&counter);
  }
};

// One "atomic overwrite via rename" application pattern.
void RenameCycle(vfs::Vfs& v, int i) {
  auto fd = v.Open("/tmp", vfs::OpenFlags{.create = true});
  if (!fd.ok()) {
    return;
  }
  uint8_t data[256];
  memset(data, i, sizeof(data));
  (void)v.Pwrite(*fd, data, sizeof(data), 0);
  (void)v.Close(*fd);
  (void)v.Rename("/tmp", "/target");
}

void BM_RenameOverwrite(benchmark::State& state, vfs::BugSet bugs) {
  auto instance = std::make_unique<Instance>(bugs);
  int i = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    if (++i % 128 == 0) {
      // The log-structured FS has no cleaner; reset before the log fills.
      state.PauseTiming();
      instance = std::make_unique<Instance>(bugs);
      state.ResumeTiming();
    }
    RenameCycle(*instance->vfs, i);
    ++ops;
  }
  state.counters["fences/op"] = benchmark::Counter(
      static_cast<double>(instance->counter.fences) / (i % 128 == 0 ? 1 : i % 128),
      benchmark::Counter::kDefaults);
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}

void LinkCycle(vfs::Vfs& v, int i) {
  (void)v.Link("/target", "/l");
  (void)v.Unlink("/l");
}

void BM_LinkCreate(benchmark::State& state, vfs::BugSet bugs) {
  auto instance = std::make_unique<Instance>(bugs);
  {
    auto fd = instance->vfs->Open("/target", vfs::OpenFlags{.create = true});
    (void)instance->vfs->Close(*fd);
  }
  int i = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    if (++i % 96 == 0) {
      state.PauseTiming();
      instance = std::make_unique<Instance>(bugs);
      auto fd = instance->vfs->Open("/target", vfs::OpenFlags{.create = true});
      (void)instance->vfs->Close(*fd);
      state.ResumeTiming();
    }
    LinkCycle(*instance->vfs, i);
    ++ops;
  }
  state.counters["fences/op"] = benchmark::Counter(
      static_cast<double>(instance->counter.fences) / (i % 96 == 0 ? 1 : i % 96),
      benchmark::Counter::kDefaults);
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}

}  // namespace

BENCHMARK_CAPTURE(BM_RenameOverwrite, fixed, vfs::BugSet{});
BENCHMARK_CAPTURE(BM_RenameOverwrite, unfixed_bugs_4_5,
                  vfs::BugSet({vfs::BugId::kNova4RenameInPlaceDelete,
                               vfs::BugId::kNova5RenameOverwriteInPlace}));
BENCHMARK_CAPTURE(BM_LinkCreate, fixed, vfs::BugSet{});
BENCHMARK_CAPTURE(BM_LinkCreate, unfixed_bug_6,
                  vfs::BugSet({vfs::BugId::kNova6LinkInPlaceCount}));

BENCHMARK_MAIN();
