// Lease-partition overhead: what the coordinator's fault-tolerance costs
// when nothing fails. A lease-partitioned campaign pays for per-lease store
// setup (fresh corpus, fresh equivalence index, its own log + checkpoints)
// and the final fold, in exchange for revocable units of work. This bench
// runs one campaign three ways — a plain single-store run and LocalScheduler
// partitions at two lease sizes — and reports wall time, fold time, and the
// overhead ratio. Sanity gates: every fold covers the full ordinal count,
// and re-folding the same partition is deterministic (identical committed /
// crash-state / report counts).
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/coord/campaign_runner.h"
#include "src/fuzz/fuzz_engine.h"
#include "src/vfs/bug.h"

namespace {

constexpr uint64_t kIterations = 60;

double NowS() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

fuzz::FuzzOptions BaseOptions() {
  fuzz::FuzzOptions o;
  o.seed = 7;
  o.iterations = kIterations;
  o.checkpoint_interval = 16;
  return o;
}

struct LeaseRun {
  uint64_t lease_size = 0;
  double run_seconds = 0;
  double fold_seconds = 0;
  uint64_t committed = 0;
  uint64_t crash_states = 0;
  uint64_t reports = 0;
  bool deterministic = false;  // refold matches the first fold
};

bool RunPartition(const chipmunk::FsConfig& config, const std::string& root,
                  uint64_t lease_size, LeaseRun* out) {
  std::filesystem::remove_all(root);
  coord::LeaseRunnerOptions options;
  options.root = root;
  options.base = BaseOptions();
  options.make_driver = [&config](const fuzz::CampaignOptions& opt) {
    return std::unique_ptr<fuzz::CampaignDriver>(
        new fuzz::FuzzEngine(config, opt));
  };

  const double run_start = NowS();
  fuzz::LocalScheduler scheduler(kIterations, lease_size);
  auto run = coord::RunLeases(scheduler, options);
  if (!run.ok()) {
    std::fprintf(stderr, "lease run (size %llu): %s\n",
                 static_cast<unsigned long long>(lease_size),
                 run.status().ToString().c_str());
    return false;
  }
  out->lease_size = lease_size;
  out->run_seconds = NowS() - run_start;

  const double fold_start = NowS();
  auto fold = coord::FoldLeases(root, kIterations);
  if (!fold.ok()) {
    std::fprintf(stderr, "fold (size %llu): %s\n",
                 static_cast<unsigned long long>(lease_size),
                 fold.status().ToString().c_str());
    return false;
  }
  out->fold_seconds = NowS() - fold_start;
  out->committed = fold->state.committed;
  out->crash_states = fold->state.crash_states;
  out->reports = fold->state.unique_reports.size();

  auto refold = coord::FoldLeases(root, kIterations);
  out->deterministic = refold.ok() &&
                       refold->state.committed == out->committed &&
                       refold->state.crash_states == out->crash_states &&
                       refold->state.unique_reports.size() == out->reports;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::JsonFlag(argc, argv);
  bench::PrintHeader(
      "Lease partitioning: fault-tolerance overhead on the no-failure path");

  vfs::BugSet bugs;
  bugs.Enable(vfs::BugId::kNova1LogPageInitOrder);
  bugs.Enable(vfs::BugId::kNova3TailOverrun);
  auto config = chipmunk::MakeFsConfig("novafs", bugs, bench::kDeviceSize);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  const std::string base =
      (std::filesystem::temp_directory_path() / "chipmunk-bench-lease")
          .string();

  // The plain single-store campaign: the overhead baseline.
  std::filesystem::remove_all(base + "-plain");
  fuzz::FuzzOptions plain_options = BaseOptions();
  plain_options.campaign_dir = base + "-plain";
  fuzz::FuzzEngine plain(*config, plain_options);
  common::Status opened = plain.OpenCampaign();
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.ToString().c_str());
    return 1;
  }
  const double plain_start = NowS();
  const fuzz::FuzzResult plain_result = plain.Run();
  const double plain_seconds = NowS() - plain_start;

  LeaseRun runs[2];
  if (!RunPartition(*config, base + "-l6", 6, &runs[0]) ||
      !RunPartition(*config, base + "-l20", 20, &runs[1])) {
    return 1;
  }

  std::printf("%-14s %8s %8s %10s %10s %10s %9s\n", "mode", "run(s)",
              "fold(s)", "committed", "states", "reports", "overhead");
  bench::PrintRule();
  std::printf("%-14s %8.2f %8s %10zu %10zu %10zu %9s\n", "plain",
              plain_seconds, "-", plain_result.executed,
              plain_result.crash_states, plain_result.unique_reports.size(),
              "1.00x");
  bool ok = plain_result.executed == kIterations;
  for (const LeaseRun& r : runs) {
    const double total = r.run_seconds + r.fold_seconds;
    char label[32];
    std::snprintf(label, sizeof(label), "lease-size %llu",
                  static_cast<unsigned long long>(r.lease_size));
    std::printf("%-14s %8.2f %8.2f %10llu %10llu %10llu %8.2fx\n", label,
                r.run_seconds, r.fold_seconds,
                static_cast<unsigned long long>(r.committed),
                static_cast<unsigned long long>(r.crash_states),
                static_cast<unsigned long long>(r.reports),
                total / plain_seconds);
    ok = ok && r.committed == kIterations && r.deterministic;
  }
  bench::PrintRule();
  std::printf("note: lease partitions reset the corpus per lease by design, "
              "so crash-state and report\ncounts are comparable, not "
              "identical, across modes; within one lease size the fold is\n"
              "deterministic (gated above).\n");
  if (!ok) {
    std::printf("FAIL: a partition missed full coverage or folded "
                "non-deterministically\n");
  }

  if (json) {
    bench::JsonObject root;
    root.Put("bench", "lease_overhead")
        .Put("iterations", kIterations)
        .Put("plain_wall_seconds", plain_seconds)
        .Put("plain_crash_states",
             static_cast<uint64_t>(plain_result.crash_states))
        .Put("plain_reports",
             static_cast<uint64_t>(plain_result.unique_reports.size()));
    bench::JsonArray arr;
    for (const LeaseRun& r : runs) {
      bench::JsonObject o;
      o.Put("lease_size", r.lease_size)
          .Put("run_wall_seconds", r.run_seconds)
          .Put("fold_wall_seconds", r.fold_seconds)
          .Put("committed", r.committed)
          .Put("crash_states", r.crash_states)
          .Put("reports", r.reports)
          .Put("overhead_vs_plain",
               (r.run_seconds + r.fold_seconds) / plain_seconds)
          .Put("deterministic_fold", r.deterministic);
      arr.Add(o);
    }
    root.PutRaw("partitions", arr.str()).Put("ok", ok);
    if (!bench::WriteBenchJson("lease_overhead", root)) {
      return 1;
    }
  }
  return ok ? 0 : 1;
}
