// Ablation study of the crash-state generator's design choices (the lessons
// of §5.2): which bugs survive when each mechanism is turned off?
//
//   full          — the shipped configuration (subset enumeration with
//                   reordering, mid-syscall crash points, data coalescing
//                   with partial-data states)
//   prefix-only   — in-flight writes persist in program order (a strict
//                   persistency model / a generator that ignores store
//                   reordering)
//   no-mid        — crash points only after syscalls (the CrashMonkey/Hydra
//                   heuristic the paper shows is insufficient for PM, §5.1.2
//                   Observation 5)
//   no-coalesce   — no data-write coalescing and no partial-data states
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"

namespace {

struct Mode {
  const char* name;
  chipmunk::HarnessOptions options;
};

}  // namespace

int main() {
  bench::PrintHeader("Ablation: generator design choices vs bugs found");

  chipmunk::HarnessOptions base;
  base.replay_cap = 2;
  base.stop_at_first_report = true;

  std::vector<Mode> modes;
  modes.push_back({"full", base});
  {
    chipmunk::HarnessOptions o = base;
    o.prefix_only = true;
    modes.push_back({"prefix-only", o});
  }
  {
    chipmunk::HarnessOptions o = base;
    o.check_mid_syscall = false;
    modes.push_back({"no-mid", o});
  }
  {
    chipmunk::HarnessOptions o = base;
    o.coalesce_data = false;
    modes.push_back({"no-coalesce", o});
  }

  std::printf("%-6s %-22s", "Bug", "trigger");
  for (const Mode& mode : modes) {
    std::printf(" %12s", mode.name);
  }
  std::printf("\n");
  bench::PrintRule();

  std::map<std::string, int> found_count;
  int total = 0;
  for (const vfs::BugInfo& info : vfs::AllBugs()) {
    ++total;
    std::printf("%-6d %-22s", static_cast<int>(info.id),
                trigger::TriggerFor(info.id));
    for (const Mode& mode : modes) {
      bool found = bench::RunTrigger(info.id, mode.options).has_value();
      if (found) {
        ++found_count[mode.name];
      }
      std::printf(" %12s", found ? "yes" : "NO");
    }
    std::printf("\n");
  }
  bench::PrintRule();
  std::printf("bugs found:                  ");
  for (const Mode& mode : modes) {
    std::printf(" %8d/%d", found_count[mode.name], total);
  }
  std::printf("\n\n");
  std::printf(
      "Reading the columns: disabling mid-syscall crash points loses the\n"
      "bugs that only manifest while a system call is executing (§5.1.2,\n"
      "Observation 5 — the heuristic traditional-FS tools rely on); the\n"
      "prefix-only model loses bugs that need writes to persist out of\n"
      "program order; disabling coalescing mainly costs crash states, not\n"
      "bugs, at these workload sizes.\n");
  return 0;
}
