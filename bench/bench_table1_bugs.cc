// Regenerates Table 1: the bug matrix. For each of the 25 rows (23 unique
// bugs; 14/15 and 17/18 share fixes), the corresponding file system is
// instantiated with exactly that bug injected and searched with ACE
// (seq-1 -> seq-2 -> seq-3-metadata), falling back to the fuzzer for the
// workload shapes ACE cannot express. Prints the detection evidence next to
// the paper's consequence column.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/fuzz/fuzz_engine.h"

int main() {
  bench::PrintHeader("Table 1: crash-consistency bugs found by Chipmunk");
  std::printf(
      "%-4s %-14s %-44s %-6s %-10s %-10s %9s\n", "Bug", "FS", "Consequence",
      "Type", "Found by", "Check", "CPU(ms)");
  bench::PrintRule();

  chipmunk::HarnessOptions opts;
  opts.replay_cap = 2;  // §4.2: fuzzing-scale cap; sufficient for all bugs
  opts.stop_at_first_report = true;

  int detected = 0;
  int ace_found = 0;
  int fuzzer_only = 0;
  for (const vfs::BugInfo& info : vfs::AllBugs()) {
    auto config = chipmunk::MakeBugConfig(info.id, bench::kDeviceSize);
    if (!config.ok()) {
      std::printf("%-4d config error: %s\n", static_cast<int>(info.id),
                  config.status().ToString().c_str());
      continue;
    }
    std::string found_by = "NOT FOUND";
    std::string check = "-";
    double ms = 0;
    if (!info.fuzzer_only) {
      bench::SearchResult result = bench::AceSearch(*config, opts);
      ms = result.cpu_seconds * 1e3;
      if (result.found) {
        ++detected;
        ++ace_found;
        found_by = result.generator;
        check = chipmunk::CheckKindName(result.report.kind);
      }
    } else {
      fuzz::FuzzOptions fopts;
      fopts.seed = 1234;
      fopts.harness = opts;
      fuzz::FuzzEngine fuzzer(*config, fopts);
      bool found = false;
      for (int i = 0; i < 4000 && !found; ++i) {
        found = fuzzer.Step() > 0;
      }
      ms = fuzzer.cpu_seconds() * 1e3;
      if (found) {
        ++detected;
        ++fuzzer_only;
        found_by = "fuzzer";
        check = chipmunk::CheckKindName(
            fuzzer.result().timeline.empty()
                ? chipmunk::CheckKind::kAtomicity
                : chipmunk::CheckKind::kAtomicity);
        // Recover the check kind from the stored unique report.
        fuzz::FuzzResult result = fuzzer.Run();
        if (!result.unique_reports.empty()) {
          check = chipmunk::CheckKindName(result.unique_reports[0].kind);
        }
      }
    }
    std::printf("%-4d %-14s %-44.44s %-6s %-10s %-10s %9.1f\n",
                static_cast<int>(info.id), info.fs, info.consequence,
                info.type == vfs::BugType::kLogic ? "Logic" : "PM",
                found_by.c_str(), check.c_str(), ms);
  }
  bench::PrintRule();
  std::printf(
      "Detected %d/25 Table 1 rows (paper: 23 unique bugs across 5 file\n"
      "systems; ACE-reachable rows found by ACE: %d; fuzzer-only rows: %d —\n"
      "paper reports 4 bugs only Syzkaller could find).\n",
      detected, ace_found, fuzzer_only);
  return detected == 25 ? 0 : 1;
}
