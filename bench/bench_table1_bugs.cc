// Regenerates Table 1: the bug matrix. For each of the 25 rows (23 unique
// bugs; 14/15 and 17/18 share fixes), the corresponding file system is
// instantiated with exactly that bug injected and searched with ACE
// (seq-1 -> seq-2 -> seq-3-metadata), falling back to the fuzzer for the
// workload shapes ACE cannot express. Prints the detection evidence next to
// the paper's consequence column.
//
// With --representative the search replays only one crash state per
// page-signature class (the pruning heuristic); the exit code still demands
// all 25 detections, which is the heuristic's safety regression gate.
//
// With --targeted every ACE row is searched twice — default visitation order
// and violation-targeted order (invariants mined from the bug-free twin of
// the row's file system over the ACE seq-1 corpus). Targeting steers at two
// levels: statically suspicious workloads are searched first, and inside
// each fence window the states staging a flagged ordering violation mount
// first. The exit code additionally demands that targeting changes no
// detection (same found/phase per row) and reaches the first bug after
// strictly fewer aggregate mounted crash states: the targeting-efficiency
// gate.
#include <cstdio>
#include <cstring>
#include <map>

#include "bench/bench_util.h"
#include "src/analysis/hb.h"
#include "src/analysis/invariants.h"
#include "src/fuzz/fuzz_engine.h"

namespace {

// Mines ordering invariants from the named file system with every bug
// switched off, over the ACE seq-1 and seq-2 corpora — the same workload
// shapes the --targeted search visits, so the mined regions match the
// layouts the steered traces actually touch (trigger workloads allocate
// differently and their invariants never fire on ACE traces), and the
// invariants generalize across both exhaustive phases (mining seq-1 alone
// leaves pairs that clean seq-2 traces violate, flooding the steering
// pre-pass with false positives).
analysis::InvariantSet MineCleanTwin(const std::string& fs) {
  analysis::InvariantMiner miner;
  auto clean = chipmunk::MakeFsConfig(fs, vfs::BugSet{}, bench::kDeviceSize);
  if (!clean.ok()) {
    return miner.Mine(fs);
  }
  for (const int seq : {1, 2}) {
    workload::ForEachAceWorkload(
        workload::AceOptions{.seq = seq}, [&](const workload::Workload& w) {
          auto recorded = chipmunk::RecordTrace(*clean, w);
          if (recorded.ok()) {
            analysis::LintOptions options;
            options.synchronous = recorded->guarantees.synchronous;
            miner.AddTrace(analysis::BuildHb(recorded->trace, options));
          }
          return true;
        });
  }
  return miner.Mine(fs);
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::JsonFlag(argc, argv);
  bool representative = false;
  bool targeted = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--representative") == 0) {
      representative = true;
    } else if (std::strcmp(argv[i], "--targeted") == 0) {
      targeted = true;
    }
  }
  bench::PrintHeader(
      targeted ? "Table 1: bug matrix (--targeted replay gate)"
      : representative
          ? "Table 1: bug matrix (--representative pruning)"
          : "Table 1: crash-consistency bugs found by Chipmunk");
  std::printf(
      "%-4s %-14s %-44s %-6s %-10s %-10s %9s\n", "Bug", "FS", "Consequence",
      "Type", "Found by", "Check", "CPU(ms)");
  bench::PrintRule();

  chipmunk::HarnessOptions opts;
  opts.replay_cap = 2;  // §4.2: fuzzing-scale cap; sufficient for all bugs
  opts.stop_at_first_report = true;
  opts.representative = representative;

  int rows = 0;
  int detected = 0;
  int ace_found = 0;
  int fuzzer_only = 0;
  uint64_t baseline_states = 0;  // --targeted: untargeted states to first bug
  uint64_t targeted_states = 0;  // --targeted: targeted states to first bug
  int gate_mismatches = 0;       // --targeted: rows whose detection changed
  std::map<std::string, analysis::InvariantSet> mined;  // per-FS, clean twin
  bench::JsonArray json_rows;
  for (const vfs::BugInfo& info : vfs::AllBugs()) {
    if (info.unique_bug >= 27) {
      // Concurrency seeds arm only under multi-threaded workloads, which
      // neither ACE nor the single-threaded fuzz search here can express;
      // bench_concurrent owns their detection gate.
      continue;
    }
    auto config = chipmunk::MakeBugConfig(info.id, bench::kDeviceSize);
    if (!config.ok()) {
      std::printf("%-4d config error: %s\n", static_cast<int>(info.id),
                  config.status().ToString().c_str());
      continue;
    }
    ++rows;
    std::string found_by = "NOT FOUND";
    std::string check = "-";
    double ms = 0;
    if (!info.fuzzer_only) {
      bench::SearchResult result = bench::AceSearch(*config, opts);
      ms = result.cpu_seconds * 1e3;
      if (result.found) {
        ++detected;
        ++ace_found;
        found_by = result.generator;
        check = chipmunk::CheckKindName(result.report.kind);
      }
      if (targeted) {
        auto it = mined.find(info.fs);
        if (it == mined.end()) {
          it = mined.emplace(info.fs, MineCleanTwin(info.fs)).first;
        }
        chipmunk::HarnessOptions topts = opts;
        topts.targeted = true;
        topts.invariants = &it->second;
        bench::SearchResult steered = bench::AceSearch(*config, topts);
        baseline_states += result.crash_states;
        targeted_states += steered.crash_states;
        // Targeting is a pure visitation reorder — across workloads
        // (suspicious traces searched first) and within each fence window.
        // The bug must still be found in the same phase; the *workload*
        // that first exposes it may legitimately differ, since the steered
        // stream reaches a different reporting workload first.
        if (steered.found != result.found ||
            steered.generator != result.generator) {
          ++gate_mismatches;
        }
      }
    } else {
      fuzz::FuzzOptions fopts;
      fopts.seed = 1234;
      fopts.harness = opts;
      fuzz::FuzzEngine fuzzer(*config, fopts);
      bool found = false;
      for (int i = 0; i < 4000 && !found; ++i) {
        found = fuzzer.Step() > 0;
      }
      ms = fuzzer.cpu_seconds() * 1e3;
      if (found) {
        ++detected;
        ++fuzzer_only;
        found_by = "fuzzer";
        check = chipmunk::CheckKindName(
            fuzzer.result().timeline.empty()
                ? chipmunk::CheckKind::kAtomicity
                : chipmunk::CheckKind::kAtomicity);
        // Recover the check kind from the stored unique report.
        fuzz::FuzzResult result = fuzzer.Run();
        if (!result.unique_reports.empty()) {
          check = chipmunk::CheckKindName(result.unique_reports[0].kind);
        }
      }
    }
    std::printf("%-4d %-14s %-44.44s %-6s %-10s %-10s %9.1f\n",
                static_cast<int>(info.id), info.fs, info.consequence,
                info.type == vfs::BugType::kLogic ? "Logic" : "PM",
                found_by.c_str(), check.c_str(), ms);
    json_rows.Add(bench::JsonObject()
                      .Put("bug", static_cast<uint64_t>(info.id))
                      .Put("fs", info.fs)
                      .Put("type",
                           info.type == vfs::BugType::kLogic ? "logic" : "pm")
                      .Put("found_by", found_by)
                      .Put("check", check)
                      .Put("cpu_ms", ms));
  }
  bench::PrintRule();
  std::printf(
      "Detected %d/%d rows (paper's Table 1 plus later synthetic seeds;\n"
      "paper: 23 unique bugs across 5 file systems). ACE-reachable rows\n"
      "found by ACE: %d; fuzzer-only rows: %d — paper reports 4 bugs only\n"
      "Syzkaller could find.\n",
      detected, rows, ace_found, fuzzer_only);
  bool gate_ok = true;
  if (targeted) {
    gate_ok = gate_mismatches == 0 && targeted_states < baseline_states;
    std::printf(
        "targeted gate: %llu crash states to first bug vs %llu untargeted "
        "(%d detection mismatch(es)) — %s\n",
        static_cast<unsigned long long>(targeted_states),
        static_cast<unsigned long long>(baseline_states), gate_mismatches,
        gate_ok ? "PASS" : "FAIL");
  }
  if (json) {
    bench::JsonObject root;
    root.Put("bench", "table1_bugs")
        .Put("representative", representative)
        .Put("targeted", targeted)
        .Put("row_count", static_cast<uint64_t>(rows))
        .Put("detected", static_cast<uint64_t>(detected))
        .Put("ace_found", static_cast<uint64_t>(ace_found))
        .Put("fuzzer_only", static_cast<uint64_t>(fuzzer_only))
        .PutRaw("rows", json_rows.str());
    if (targeted) {
      root.Put("baseline_crash_states", baseline_states)
          .Put("targeted_crash_states", targeted_states)
          .Put("gate_mismatches", static_cast<uint64_t>(gate_mismatches));
    }
    if (!bench::WriteBenchJson(targeted ? "table1_bugs_targeted"
                               : representative
                                   ? "table1_bugs_representative"
                                   : "table1_bugs",
                               root)) {
      return 1;
    }
  }
  return detected == rows && gate_ok ? 0 : 1;
}
