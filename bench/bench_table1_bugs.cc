// Regenerates Table 1: the bug matrix. For each of the 25 rows (23 unique
// bugs; 14/15 and 17/18 share fixes), the corresponding file system is
// instantiated with exactly that bug injected and searched with ACE
// (seq-1 -> seq-2 -> seq-3-metadata), falling back to the fuzzer for the
// workload shapes ACE cannot express. Prints the detection evidence next to
// the paper's consequence column.
//
// With --representative the search replays only one crash state per
// page-signature class (the pruning heuristic); the exit code still demands
// all 25 detections, which is the heuristic's safety regression gate.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/fuzz/fuzz_engine.h"

int main(int argc, char** argv) {
  const bool json = bench::JsonFlag(argc, argv);
  bool representative = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--representative") == 0) {
      representative = true;
    }
  }
  bench::PrintHeader(representative
                         ? "Table 1: bug matrix (--representative pruning)"
                         : "Table 1: crash-consistency bugs found by Chipmunk");
  std::printf(
      "%-4s %-14s %-44s %-6s %-10s %-10s %9s\n", "Bug", "FS", "Consequence",
      "Type", "Found by", "Check", "CPU(ms)");
  bench::PrintRule();

  chipmunk::HarnessOptions opts;
  opts.replay_cap = 2;  // §4.2: fuzzing-scale cap; sufficient for all bugs
  opts.stop_at_first_report = true;
  opts.representative = representative;

  int rows = 0;
  int detected = 0;
  int ace_found = 0;
  int fuzzer_only = 0;
  bench::JsonArray json_rows;
  for (const vfs::BugInfo& info : vfs::AllBugs()) {
    auto config = chipmunk::MakeBugConfig(info.id, bench::kDeviceSize);
    if (!config.ok()) {
      std::printf("%-4d config error: %s\n", static_cast<int>(info.id),
                  config.status().ToString().c_str());
      continue;
    }
    ++rows;
    std::string found_by = "NOT FOUND";
    std::string check = "-";
    double ms = 0;
    if (!info.fuzzer_only) {
      bench::SearchResult result = bench::AceSearch(*config, opts);
      ms = result.cpu_seconds * 1e3;
      if (result.found) {
        ++detected;
        ++ace_found;
        found_by = result.generator;
        check = chipmunk::CheckKindName(result.report.kind);
      }
    } else {
      fuzz::FuzzOptions fopts;
      fopts.seed = 1234;
      fopts.harness = opts;
      fuzz::FuzzEngine fuzzer(*config, fopts);
      bool found = false;
      for (int i = 0; i < 4000 && !found; ++i) {
        found = fuzzer.Step() > 0;
      }
      ms = fuzzer.cpu_seconds() * 1e3;
      if (found) {
        ++detected;
        ++fuzzer_only;
        found_by = "fuzzer";
        check = chipmunk::CheckKindName(
            fuzzer.result().timeline.empty()
                ? chipmunk::CheckKind::kAtomicity
                : chipmunk::CheckKind::kAtomicity);
        // Recover the check kind from the stored unique report.
        fuzz::FuzzResult result = fuzzer.Run();
        if (!result.unique_reports.empty()) {
          check = chipmunk::CheckKindName(result.unique_reports[0].kind);
        }
      }
    }
    std::printf("%-4d %-14s %-44.44s %-6s %-10s %-10s %9.1f\n",
                static_cast<int>(info.id), info.fs, info.consequence,
                info.type == vfs::BugType::kLogic ? "Logic" : "PM",
                found_by.c_str(), check.c_str(), ms);
    json_rows.Add(bench::JsonObject()
                      .Put("bug", static_cast<uint64_t>(info.id))
                      .Put("fs", info.fs)
                      .Put("type",
                           info.type == vfs::BugType::kLogic ? "logic" : "pm")
                      .Put("found_by", found_by)
                      .Put("check", check)
                      .Put("cpu_ms", ms));
  }
  bench::PrintRule();
  std::printf(
      "Detected %d/%d rows (paper's Table 1 plus later synthetic seeds;\n"
      "paper: 23 unique bugs across 5 file systems). ACE-reachable rows\n"
      "found by ACE: %d; fuzzer-only rows: %d — paper reports 4 bugs only\n"
      "Syzkaller could find.\n",
      detected, rows, ace_found, fuzzer_only);
  if (json) {
    bench::JsonObject root;
    root.Put("bench", "table1_bugs")
        .Put("representative", representative)
        .Put("rows", static_cast<uint64_t>(rows))
        .Put("detected", static_cast<uint64_t>(detected))
        .Put("ace_found", static_cast<uint64_t>(ace_found))
        .Put("fuzzer_only", static_cast<uint64_t>(fuzzer_only))
        .PutRaw("rows", json_rows.str());
    if (!bench::WriteBenchJson(representative ? "table1_bugs_representative"
                                              : "table1_bugs",
                               root)) {
      return 1;
    }
  }
  return detected == rows ? 0 : 1;
}
