// Parallel replay throughput: crash-states/sec over the trigger-workload
// suite at 1/2/4/8 replay workers, plus a cross-check that every jobs
// setting produces the identical report list (the engine's determinism
// guarantee). Speedup is bounded by the hardware thread count printed in
// the header — on a single-core host all rows measure the (small) overhead
// of the task queue rather than any parallelism.
//
// Also measures the crash-image materialization cost: page-granular
// copy-on-write overlays (the default) versus full deep copies of the base
// image (--no-cow). With --assert-cow the bench exits non-zero unless the
// CoW materialization path is at least 3x cheaper — the CI regression gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/pmem/pm_device.h"

namespace {

struct Row {
  size_t jobs;
  uint64_t crash_states = 0;
  uint64_t reports = 0;
  double seconds = 0;
  std::vector<std::string> signatures;  // sorted, across the whole suite
};

// The trigger suite plus an idempotent overwrite (the same bytes written
// twice), the shape the no-op-fence pruner exists for.
std::vector<workload::Workload> SuiteWorkloads() {
  auto workloads = trigger::AllTriggerWorkloads();
  workload::Workload idem;
  idem.name = "idempotent-overwrite";
  idem.ops = {trigger::MkOpen("/log", 0), trigger::MkPwrite("/log", 0, 0, 1024),
              trigger::MkPwrite("/log", 0, 0, 1024), trigger::MkClose(0)};
  workloads.push_back(std::move(idem));
  return workloads;
}

Row RunSuite(size_t jobs, bool prune = false, bool cow = true) {
  Row row;
  row.jobs = jobs;
  chipmunk::HarnessOptions options;
  options.jobs = jobs;
  options.prune_noop_fences = prune;
  options.cow_images = cow;
  // A mix of clean and buggy configurations so both the report path and the
  // clean path are timed.
  std::vector<chipmunk::FsConfig> configs;
  for (const char* fs : {"novafs", "pmfs", "winefs"}) {
    auto config = chipmunk::MakeFsConfig(fs, {}, bench::kDeviceSize);
    if (config.ok()) {
      configs.push_back(*config);
    }
  }
  auto buggy = chipmunk::MakeBugConfig(vfs::BugId::kNova4RenameInPlaceDelete,
                                       bench::kDeviceSize);
  if (buggy.ok()) {
    configs.push_back(*buggy);
  }

  const auto workloads = SuiteWorkloads();
  auto start = std::chrono::steady_clock::now();
  for (const chipmunk::FsConfig& config : configs) {
    chipmunk::Harness harness(config, options);
    for (const workload::Workload& w : workloads) {
      auto stats = harness.TestWorkload(w);
      if (!stats.ok()) {
        continue;
      }
      row.crash_states += stats->crash_states;
      row.reports += stats->reports.size();
      for (const chipmunk::BugReport& r : stats->reports) {
        row.signatures.push_back(r.Signature());
      }
    }
  }
  auto end = std::chrono::steady_clock::now();
  row.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  std::sort(row.signatures.begin(), row.signatures.end());
  return row;
}

// Materialization micro-bench: the per-crash-state image construction cost,
// isolated from mounting and checking. The deep path is what replay workers
// did before overlays existed — copy the whole base image, then apply the
// in-flight writes; the CoW path materializes an overlay device over the
// shared base and pays only for the pages it touches. A checksum read keeps
// the compiler from eliding either loop.
struct CowCost {
  double deep_seconds = 0;
  double cow_seconds = 0;
  double speedup() const {
    return cow_seconds > 0 ? deep_seconds / cow_seconds : 0;
  }
};

constexpr int kMatIters = 4000;

CowCost MeasureMaterialization() {
  constexpr size_t kWrites = 4;     // typical fence-window in-flight set
  constexpr size_t kWriteLen = 64;  // one cache line per store
  constexpr int kIters = kMatIters;
  std::vector<uint8_t> base(bench::kDeviceSize);
  for (size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<uint8_t>(i * 131);
  }
  uint8_t data[kWriteLen];
  std::memset(data, 0xa5, sizeof(data));
  // Spread the writes across distinct pages, as metadata updates are.
  uint64_t offs[kWrites];
  for (size_t i = 0; i < kWrites; ++i) {
    offs[i] = (i * 37 + 3) * pmem::PmDevice::kPageSize + 128;
  }

  CowCost cost;
  uint64_t sink = 0;
  auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < kIters; ++it) {
    pmem::PmDevice dev(base);  // deep copy of the full base image
    for (size_t i = 0; i < kWrites; ++i) {
      dev.Write(offs[i], data, kWriteLen);
    }
    uint8_t byte = 0;
    dev.Read(offs[0], &byte, 1);
    sink += byte;
  }
  auto mid = std::chrono::steady_clock::now();
  for (int it = 0; it < kIters; ++it) {
    pmem::PmDevice dev(&base);  // page-granular overlay over the shared base
    for (size_t i = 0; i < kWrites; ++i) {
      dev.Write(offs[i], data, kWriteLen);
    }
    uint8_t byte = 0;
    dev.Read(offs[0], &byte, 1);
    sink += byte;
  }
  auto end = std::chrono::steady_clock::now();
  if (sink == 0) {
    std::printf("(unreachable: checksum sink)\n");
  }
  cost.deep_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(mid - start)
          .count();
  cost.cow_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - mid)
          .count();
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::JsonFlag(argc, argv);
  bool assert_cow = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-cow") == 0) {
      assert_cow = true;
    }
  }
  bench::PrintHeader("Parallel replay: crash-states/sec vs worker count");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  std::printf("%-6s %14s %10s %10s %14s %9s\n", "jobs", "crash states",
              "reports", "time(s)", "states/sec", "speedup");
  bench::PrintRule();

  std::vector<Row> rows;
  for (size_t jobs : {1, 2, 4, 8}) {
    rows.push_back(RunSuite(jobs));
    const Row& row = rows.back();
    std::printf("%-6zu %14llu %10llu %10.2f %14.0f %8.2fx\n", row.jobs,
                static_cast<unsigned long long>(row.crash_states),
                static_cast<unsigned long long>(row.reports), row.seconds,
                row.crash_states / row.seconds,
                rows.front().seconds / row.seconds);
  }
  bench::PrintRule();

  bool identical = true;
  for (const Row& row : rows) {
    if (row.crash_states != rows.front().crash_states ||
        row.signatures != rows.front().signatures) {
      identical = false;
      std::printf("MISMATCH at jobs=%zu: %llu states, %zu reports\n", row.jobs,
                  static_cast<unsigned long long>(row.crash_states),
                  row.signatures.size());
    }
  }
  std::printf("report lists and crash-state counts %s across jobs settings\n",
              identical ? "identical" : "DIFFER");

  // ---- No-op-fence pruning: fewer crash states, identical reports. ----
  bench::PrintHeader("Static no-op-fence pruning (--prune)");
  std::printf("%-10s %14s %10s %10s\n", "prune", "crash states", "reports",
              "time(s)");
  bench::PrintRule();
  Row unpruned = RunSuite(1, /*prune=*/false);
  Row pruned = RunSuite(1, /*prune=*/true);
  for (const Row* row : {&unpruned, &pruned}) {
    std::printf("%-10s %14llu %10llu %10.2f\n",
                row == &pruned ? "on" : "off",
                static_cast<unsigned long long>(row->crash_states),
                static_cast<unsigned long long>(row->reports), row->seconds);
  }
  bench::PrintRule();
  const bool prune_ok = pruned.signatures == unpruned.signatures &&
                        pruned.crash_states < unpruned.crash_states;
  std::printf("pruning dropped %lld crash states (%.1f%%), reports %s\n",
              static_cast<long long>(unpruned.crash_states) -
                  static_cast<long long>(pruned.crash_states),
              100.0 * (unpruned.crash_states - pruned.crash_states) /
                  (unpruned.crash_states ? unpruned.crash_states : 1),
              pruned.signatures == unpruned.signatures ? "identical"
                                                       : "DIFFER");

  // ---- CoW overlays vs deep copies: identical results, cheaper states. ----
  bench::PrintHeader("Copy-on-write crash images (default) vs deep copies");
  std::printf("%-10s %14s %10s %10s %14s\n", "images", "crash states",
              "reports", "time(s)", "states/sec");
  bench::PrintRule();
  Row deep = RunSuite(1, /*prune=*/false, /*cow=*/false);
  Row cow = RunSuite(1, /*prune=*/false, /*cow=*/true);
  for (const Row* row : {&deep, &cow}) {
    std::printf("%-10s %14llu %10llu %10.2f %14.0f\n",
                row == &cow ? "cow" : "deep",
                static_cast<unsigned long long>(row->crash_states),
                static_cast<unsigned long long>(row->reports), row->seconds,
                row->crash_states / row->seconds);
  }
  bench::PrintRule();
  const bool cow_identical = cow.crash_states == deep.crash_states &&
                             cow.signatures == deep.signatures;
  std::printf("reports and crash-state counts %s between cow and deep\n",
              cow_identical ? "identical" : "DIFFER");

  const CowCost cost = MeasureMaterialization();
  std::printf(
      "state materialization (image construction only): deep %.0f/sec, "
      "cow %.0f/sec — %.1fx\n",
      kMatIters / cost.deep_seconds, kMatIters / cost.cow_seconds,
      cost.speedup());
  bool cow_ok = cow_identical;
  if (assert_cow && cost.speedup() < 3.0) {
    std::printf("FAIL: --assert-cow requires >= 3x materialization speedup, "
                "got %.1fx\n",
                cost.speedup());
    cow_ok = false;
  }

  if (json) {
    bench::JsonArray out_rows;
    for (const Row& row : rows) {
      out_rows.Add(bench::JsonObject()
                       .Put("jobs", static_cast<uint64_t>(row.jobs))
                       .Put("crash_states", row.crash_states)
                       .Put("reports", row.reports)
                       .Put("seconds", row.seconds)
                       .Put("states_per_sec", row.crash_states / row.seconds));
    }
    bench::JsonObject root;
    root.Put("bench", "parallel_speedup")
        .Put("hardware_threads",
             static_cast<uint64_t>(std::thread::hardware_concurrency()))
        .PutRaw("rows", out_rows.str())
        .Put("identical_across_jobs", identical)
        .PutRaw("prune", bench::JsonObject()
                             .Put("crash_states_off", unpruned.crash_states)
                             .Put("crash_states_on", pruned.crash_states)
                             .Put("reports_identical",
                                  pruned.signatures == unpruned.signatures)
                             .str())
        .PutRaw("cow",
                bench::JsonObject()
                    .Put("suite_seconds_deep", deep.seconds)
                    .Put("suite_seconds_cow", cow.seconds)
                    .Put("states_per_sec_deep", deep.crash_states / deep.seconds)
                    .Put("states_per_sec_cow", cow.crash_states / cow.seconds)
                    .Put("reports_identical", cow_identical)
                    .Put("cow_materialization_speedup", cost.speedup())
                    .str());
    if (!bench::WriteBenchJson("parallel_speedup", root)) {
      return 1;
    }
  }
  return identical && prune_ok && cow_ok ? 0 : 1;
}
