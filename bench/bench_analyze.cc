// Benchmarks the happens-before durability analyzer: for every registered
// file system (plus the reference FS), records the bundled trigger-workload
// traces once, then times (a) lifting them into durability intervals and
// mining the ordering-invariant set and (b) checking each trace against the
// mined set plus the HB lint rules. Recording time is excluded — the numbers
// isolate the analysis itself.
//
// Doubles as a cheap regression gate: the reference FS must analyze clean
// (zero HB findings, zero invariant violations) against its own mined set.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/hb.h"
#include "src/analysis/invariants.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(end - begin)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::JsonFlag(argc, argv);
  bench::PrintHeader("Happens-before analyzer: mining and checking");
  std::printf("%-16s %7s %9s %10s %9s %10s %8s\n", "fs", "traces",
              "intervals", "invariants", "mine(ms)", "check(ms)", "findings");
  bench::PrintRule();

  std::vector<std::string> names = chipmunk::RegisteredFsNames();
  names.push_back("reference");
  const std::vector<workload::Workload> workloads =
      trigger::AllTriggerWorkloads();

  bench::JsonArray json_rows;
  size_t reference_findings = 0;
  bool recorded_all = true;
  for (const std::string& name : names) {
    auto config = name == "reference"
                      ? common::StatusOr<chipmunk::FsConfig>(
                            chipmunk::MakeReferenceConfig())
                      : chipmunk::MakeFsConfig(name, vfs::BugSet{},
                                               bench::kDeviceSize);
    if (!config.ok()) {
      std::printf("%-16s config error: %s\n", name.c_str(),
                  config.status().ToString().c_str());
      recorded_all = false;
      continue;
    }
    struct Recorded {
      pmem::Trace trace;
      bool synchronous = true;
    };
    std::vector<Recorded> traces;
    for (const workload::Workload& w : workloads) {
      auto recorded = chipmunk::RecordTrace(*config, w);
      if (!recorded.ok()) {
        recorded_all = false;
        continue;
      }
      traces.push_back(Recorded{std::move(recorded->trace),
                                recorded->guarantees.synchronous});
    }

    auto mine_begin = std::chrono::steady_clock::now();
    analysis::InvariantMiner miner;
    std::vector<analysis::HbAnalysis> hbs;
    size_t intervals = 0;
    for (const Recorded& r : traces) {
      analysis::LintOptions options;
      options.synchronous = r.synchronous;
      hbs.push_back(analysis::BuildHb(r.trace, options));
      intervals += hbs.back().intervals.size();
      miner.AddTrace(hbs.back());
    }
    const analysis::InvariantSet set = miner.Mine(name);
    auto mine_end = std::chrono::steady_clock::now();

    size_t findings = 0;
    auto check_begin = std::chrono::steady_clock::now();
    for (size_t i = 0; i < hbs.size(); ++i) {
      analysis::LintOptions options;
      options.synchronous = traces[i].synchronous;
      findings += analysis::HbLint(hbs[i], options).size();
      findings += analysis::CheckInvariants(hbs[i], set).size();
    }
    auto check_end = std::chrono::steady_clock::now();
    if (name == "reference") {
      reference_findings = findings;
    }

    const double mine_ms = Seconds(mine_begin, mine_end) * 1e3;
    const double check_ms = Seconds(check_begin, check_end) * 1e3;
    std::printf("%-16s %7zu %9zu %10zu %9.2f %10.2f %8zu\n", name.c_str(),
                traces.size(), intervals, set.invariants.size(), mine_ms,
                check_ms, findings);
    json_rows.Add(bench::JsonObject()
                      .Put("fs", name)
                      .Put("traces", static_cast<uint64_t>(traces.size()))
                      .Put("intervals", static_cast<uint64_t>(intervals))
                      .Put("invariants",
                           static_cast<uint64_t>(set.invariants.size()))
                      .Put("mine_ms", mine_ms)
                      .Put("check_ms", check_ms)
                      .Put("findings", static_cast<uint64_t>(findings)));
  }
  bench::PrintRule();
  std::printf("reference FS self-check: %zu finding(s) (gate: 0)\n",
              reference_findings);
  if (json) {
    bench::JsonObject root;
    root.Put("bench", "analyze")
        .Put("reference_findings",
             static_cast<uint64_t>(reference_findings))
        .PutRaw("rows", json_rows.str());
    if (!bench::WriteBenchJson("analyze", root)) {
      return 1;
    }
  }
  return recorded_all && reference_findings == 0 ? 0 : 1;
}
