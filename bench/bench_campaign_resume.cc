// Campaign-store payoff: a cold campaign vs a warm rerun of the same
// campaign (the `--campaign DIR` reuse path). The warm run consults the
// persisted crash-state equivalence index, so already-proven-clean states
// skip the mount + recovery + oracle-diff pipeline entirely. The acceptance
// bar from the store design: at least 50% of crash-state mounts skipped,
// with bug reports identical to the cold run.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fuzz/fuzz_engine.h"
#include "src/vfs/bug.h"

namespace {

std::vector<std::string> SortedSignatures(const fuzz::FuzzResult& r) {
  std::vector<std::string> sigs;
  for (const chipmunk::BugReport& report : r.unique_reports) {
    sigs.push_back(report.Signature());
  }
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::JsonFlag(argc, argv);
  bench::PrintHeader("Campaign store: cold run vs warm rerun (cross-run dedup)");

  vfs::BugSet bugs;
  bugs.Enable(vfs::BugId::kNova1LogPageInitOrder);
  bugs.Enable(vfs::BugId::kNova3TailOverrun);
  auto config = chipmunk::MakeFsConfig("novafs", bugs, bench::kDeviceSize);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "chipmunk-bench-campaign")
          .string();
  std::filesystem::remove_all(dir);

  fuzz::FuzzOptions options;
  options.seed = 7;
  options.iterations = 60;
  options.campaign_dir = dir;

  fuzz::FuzzResult results[2];
  for (int pass = 0; pass < 2; ++pass) {
    fuzz::FuzzEngine engine(*config, options);
    common::Status opened = engine.OpenCampaign();
    if (!opened.ok()) {
      std::fprintf(stderr, "campaign: %s\n", opened.ToString().c_str());
      return 1;
    }
    results[pass] = engine.Run();
  }
  const fuzz::FuzzResult& cold = results[0];
  const fuzz::FuzzResult& warm = results[1];

  std::printf("%-6s %12s %10s %10s %10s %10s\n", "pass", "crash states",
              "deduped", "reports", "wall(s)", "speedup");
  bench::PrintRule();
  for (const fuzz::FuzzResult* r : {&cold, &warm}) {
    std::printf("%-6s %12zu %10zu %10zu %10.2f %9.2fx\n",
                r == &cold ? "cold" : "warm", r->crash_states,
                r->states_deduped, r->unique_reports.size(), r->wall_seconds,
                cold.wall_seconds / r->wall_seconds);
  }
  bench::PrintRule();

  const double dedup_rate =
      warm.crash_states == 0
          ? 0.0
          : static_cast<double>(warm.states_deduped) / warm.crash_states;
  const bool reports_identical =
      SortedSignatures(cold) == SortedSignatures(warm);
  const bool floor_met = dedup_rate >= 0.5;
  std::printf("warm rerun skipped %zu of %zu crash-state mounts (%.1f%%), "
              "reports %s\n",
              warm.states_deduped, warm.crash_states, 100.0 * dedup_rate,
              reports_identical ? "identical" : "DIFFER");
  if (!floor_met) {
    std::printf("FAIL: dedup rate below the 50%% acceptance floor\n");
  }

  if (json) {
    bench::JsonObject root;
    root.Put("bench", "campaign_resume")
        .Put("iterations", static_cast<uint64_t>(options.iterations))
        .Put("crash_states", static_cast<uint64_t>(warm.crash_states))
        .Put("states_deduped", static_cast<uint64_t>(warm.states_deduped))
        .Put("dedup_rate", dedup_rate)
        .Put("cold_wall_seconds", cold.wall_seconds)
        .Put("warm_wall_seconds", warm.wall_seconds)
        .Put("speedup", cold.wall_seconds / warm.wall_seconds)
        .Put("reports_identical", reports_identical)
        .Put("dedup_floor_met", floor_met);
    if (!bench::WriteBenchJson("campaign_resume", root)) {
      return 1;
    }
  }
  return reports_identical && floor_met ? 0 : 1;
}
