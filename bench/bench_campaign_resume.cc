// Campaign-store payoff: a cold campaign vs a warm rerun of the same
// campaign (the `--campaign DIR` reuse path), for both generators that
// drive the shared campaign driver — the coverage-guided fuzzer and the
// bounded-exhaustive ACE sweep. The warm run consults the persisted
// crash-state equivalence index, so already-proven-clean states skip the
// mount + recovery + oracle-diff pipeline entirely. The acceptance bar
// from the store design (and the ace ISSUE): at least 50% of crash-state
// mounts skipped, with bug reports identical to the cold run.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fuzz/ace_engine.h"
#include "src/fuzz/fuzz_engine.h"
#include "src/vfs/bug.h"
#include "src/workload/ace.h"

namespace {

std::vector<std::string> SortedSignatures(const fuzz::FuzzResult& r) {
  std::vector<std::string> sigs;
  for (const chipmunk::BugReport& report : r.unique_reports) {
    sigs.push_back(report.Signature());
  }
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

struct ColdWarm {
  fuzz::FuzzResult cold;
  fuzz::FuzzResult warm;
  double dedup_rate = 0.0;
  bool reports_identical = false;
  bool floor_met = false;
};

// Runs the same campaign twice against `dir` (cold, then warm) via
// `make_engine` and reports the warm pass against the 50% dedup floor.
template <typename MakeEngine>
bool RunColdWarm(const char* label, const std::string& dir,
                 MakeEngine make_engine, ColdWarm* out) {
  std::filesystem::remove_all(dir);
  for (int pass = 0; pass < 2; ++pass) {
    auto engine = make_engine();
    common::Status opened = engine->OpenCampaign();
    if (!opened.ok()) {
      std::fprintf(stderr, "campaign: %s\n", opened.ToString().c_str());
      return false;
    }
    (pass == 0 ? out->cold : out->warm) = engine->Run();
  }
  const fuzz::FuzzResult& cold = out->cold;
  const fuzz::FuzzResult& warm = out->warm;

  std::printf("%s\n", label);
  std::printf("%-6s %12s %10s %10s %10s %10s\n", "pass", "crash states",
              "deduped", "reports", "wall(s)", "speedup");
  bench::PrintRule();
  for (const fuzz::FuzzResult* r : {&cold, &warm}) {
    std::printf("%-6s %12zu %10zu %10zu %10.2f %9.2fx\n",
                r == &cold ? "cold" : "warm", r->crash_states,
                r->states_deduped, r->unique_reports.size(), r->wall_seconds,
                cold.wall_seconds / r->wall_seconds);
  }
  bench::PrintRule();

  out->dedup_rate =
      warm.crash_states == 0
          ? 0.0
          : static_cast<double>(warm.states_deduped) / warm.crash_states;
  out->reports_identical = SortedSignatures(cold) == SortedSignatures(warm);
  out->floor_met = out->dedup_rate >= 0.5;
  std::printf("warm rerun skipped %zu of %zu crash-state mounts (%.1f%%), "
              "reports %s\n\n",
              warm.states_deduped, warm.crash_states, 100.0 * out->dedup_rate,
              out->reports_identical ? "identical" : "DIFFER");
  if (!out->floor_met) {
    std::printf("FAIL: %s dedup rate below the 50%% acceptance floor\n",
                label);
  }
  return true;
}

bench::JsonObject PassJson(const ColdWarm& r) {
  bench::JsonObject o;
  o.Put("crash_states", static_cast<uint64_t>(r.warm.crash_states))
      .Put("states_deduped", static_cast<uint64_t>(r.warm.states_deduped))
      .Put("dedup_rate", r.dedup_rate)
      .Put("cold_wall_seconds", r.cold.wall_seconds)
      .Put("warm_wall_seconds", r.warm.wall_seconds)
      .Put("speedup", r.cold.wall_seconds / r.warm.wall_seconds)
      .Put("reports_identical", r.reports_identical)
      .Put("dedup_floor_met", r.floor_met);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::JsonFlag(argc, argv);
  bench::PrintHeader("Campaign store: cold run vs warm rerun (cross-run dedup)");

  vfs::BugSet bugs;
  bugs.Enable(vfs::BugId::kNova1LogPageInitOrder);
  bugs.Enable(vfs::BugId::kNova3TailOverrun);
  auto config = chipmunk::MakeFsConfig("novafs", bugs, bench::kDeviceSize);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  const std::string base =
      (std::filesystem::temp_directory_path() / "chipmunk-bench-campaign")
          .string();

  fuzz::FuzzOptions fuzz_options;
  fuzz_options.seed = 7;
  fuzz_options.iterations = 60;
  fuzz_options.campaign_dir = base + "-fuzz";
  ColdWarm fuzz_result;
  if (!RunColdWarm("fuzz campaign (60 workloads, seed 7)",
                   fuzz_options.campaign_dir,
                   [&] {
                     return std::make_unique<fuzz::FuzzEngine>(*config,
                                                               fuzz_options);
                   },
                   &fuzz_result)) {
    return 1;
  }

  // The ace sweep through the same driver: a seq-1 prefix sized like the
  // fuzz run, exhaustive replay (the ace default).
  workload::AceOptions ace;
  ace.seq = 1;
  fuzz::FuzzOptions ace_options;
  ace_options.iterations = 0;  // full 56-workload sweep
  ace_options.harness.replay_cap = 0;
  ace_options.campaign_dir = base + "-ace";
  ColdWarm ace_result;
  if (!RunColdWarm("ace campaign (seq-1 sweep, 56 workloads)",
                   ace_options.campaign_dir,
                   [&] {
                     return std::make_unique<fuzz::AceEngine>(*config,
                                                              ace_options, ace);
                   },
                   &ace_result)) {
    return 1;
  }

  const bool ok = fuzz_result.reports_identical && fuzz_result.floor_met &&
                  ace_result.reports_identical && ace_result.floor_met;
  if (json) {
    bench::JsonObject root;
    root.Put("bench", "campaign_resume")
        .Put("iterations", static_cast<uint64_t>(fuzz_options.iterations))
        .PutRaw("fuzz", PassJson(fuzz_result).str())
        .PutRaw("ace", PassJson(ace_result).str())
        .Put("dedup_floor_met", fuzz_result.floor_met && ace_result.floor_met);
    if (!bench::WriteBenchJson("campaign_resume", root)) {
      return 1;
    }
  }
  return ok ? 0 : 1;
}
