// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures.
#ifndef CHIPMUNK_BENCH_BENCH_UTIL_H_
#define CHIPMUNK_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/hb.h"
#include "src/analysis/invariants.h"
#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/workload/ace.h"
#include "src/workload/triggers.h"

namespace bench {

inline constexpr size_t kDeviceSize = 1024 * 1024;

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void PrintRule() {
  std::printf("%s\n", std::string(78, '-').c_str());
}

struct SearchResult {
  bool found = false;
  double cpu_seconds = 0;      // harness CPU time spent searching
  uint64_t workloads = 0;      // workloads executed before detection
  uint64_t crash_states = 0;   // crash states visited across the search
  std::string workload_name;   // workload that exposed the bug
  std::string generator;       // "ace-seq1" / "ace-seq2" / "ace-seq3m"
  chipmunk::BugReport report;
};

// Streams ACE workloads (seq-1, then seq-2, then seq-3-metadata up to
// `seq3_budget`) through the harness until a report appears.
//
// When opts.targeted is set, the exhaustive phases (seq-1, seq-2) get a
// static steering pre-pass: every workload is recorded once — no crash
// states mounted — and the ones whose traces raise an HB finding or violate
// a mined invariant (opts.invariants) are searched first, in canonical
// order, before the rest. Crash-state enumeration inside each workload is
// unchanged, so a full sweep visits the same states either way; with
// stop_at_first_report the suspicious workload is reached after strictly
// fewer mounted states whenever static analysis flags it. The budgeted
// seq-3m phase keeps the canonical stream (reordering would change which
// workloads fall inside the budget).
inline SearchResult AceSearch(const chipmunk::FsConfig& config,
                              const chipmunk::HarnessOptions& opts,
                              uint64_t seq3_budget = 3000) {
  SearchResult result;
  chipmunk::Harness harness(config, opts);
  struct Phase {
    workload::AceOptions ace;
    const char* label;
    uint64_t budget;
  };
  const Phase phases[] = {
      {workload::AceOptions{.seq = 1}, "ace-seq1", 0},
      {workload::AceOptions{.seq = 2}, "ace-seq2", 0},
      {workload::AceOptions{.seq = 3, .metadata_only = true}, "ace-seq3m",
       seq3_budget},
  };
  for (const Phase& phase : phases) {
    uint64_t in_phase = 0;
    auto run_one = [&](const workload::Workload& w) {
      auto start = std::chrono::steady_clock::now();
      auto stats = harness.TestWorkload(w);
      auto end = std::chrono::steady_clock::now();
      result.cpu_seconds +=
          std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
              .count();
      ++result.workloads;
      ++in_phase;
      if (stats.ok()) {
        result.crash_states += stats->crash_states;
      }
      if (stats.ok() && !stats->clean()) {
        result.found = true;
        result.workload_name = w.name;
        result.generator = phase.label;
        result.report = stats->reports[0];
        return false;
      }
      return phase.budget == 0 || in_phase < phase.budget;
    };
    if (opts.targeted && phase.budget == 0) {
      auto start = std::chrono::steady_clock::now();
      std::vector<workload::Workload> hot;
      std::vector<workload::Workload> cold;
      workload::ForEachAceWorkload(
          phase.ace, [&](const workload::Workload& w) {
            auto rec = chipmunk::RecordTrace(config, w);
            bool suspicious = false;
            if (rec.ok()) {
              analysis::LintOptions lint;
              lint.synchronous = rec->guarantees.synchronous;
              const analysis::HbAnalysis hb =
                  analysis::BuildHb(rec->trace, lint);
              suspicious =
                  !analysis::HbLint(hb, lint).empty() ||
                  (opts.invariants != nullptr &&
                   !analysis::CheckInvariants(hb, *opts.invariants).empty());
            }
            (suspicious ? hot : cold).push_back(w);
            return true;
          });
      auto end = std::chrono::steady_clock::now();
      result.cpu_seconds +=
          std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
              .count();
      for (const std::vector<workload::Workload>* bucket : {&hot, &cold}) {
        for (const workload::Workload& w : *bucket) {
          if (!run_one(w)) {
            break;
          }
        }
        if (result.found) {
          break;
        }
      }
    } else {
      workload::ForEachAceWorkload(phase.ace, run_one);
    }
    if (result.found) {
      return result;
    }
  }
  return result;
}

// Runs the named trigger workload for a bug through a harness built from the
// options; returns the first report, if any.
inline std::optional<chipmunk::BugReport> RunTrigger(
    vfs::BugId bug, const chipmunk::HarnessOptions& opts) {
  auto config = chipmunk::MakeBugConfig(bug, kDeviceSize);
  if (!config.ok()) {
    return std::nullopt;
  }
  chipmunk::Harness harness(*config, opts);
  auto workloads = trigger::AllTriggerWorkloads();
  const workload::Workload* w =
      trigger::FindWorkload(workloads, trigger::TriggerFor(bug));
  if (w == nullptr) {
    return std::nullopt;
  }
  auto stats = harness.TestWorkload(*w);
  if (!stats.ok() || stats->clean()) {
    return std::nullopt;
  }
  return stats->reports[0];
}

// ---------------------------------------------------------------------------
// Machine-readable output: every bench that opts in accepts --json and then
// writes a BENCH_<name>.json summary next to its human-readable tables, so
// CI can archive the numbers without scraping stdout.
// ---------------------------------------------------------------------------

inline bool JsonFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return true;
    }
  }
  return false;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Builds one JSON object from typed key/value puts; PutRaw nests arrays or
// objects built elsewhere.
class JsonObject {
 public:
  JsonObject& Put(const std::string& key, const std::string& v) {
    return PutRaw(key, "\"" + JsonEscape(v) + "\"");
  }
  JsonObject& Put(const std::string& key, const char* v) {
    return Put(key, std::string(v));
  }
  JsonObject& Put(const std::string& key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return PutRaw(key, buf);
  }
  JsonObject& Put(const std::string& key, uint64_t v) {
    return PutRaw(key, std::to_string(v));
  }
  JsonObject& Put(const std::string& key, bool v) {
    return PutRaw(key, v ? "true" : "false");
  }
  JsonObject& PutRaw(const std::string& key, const std::string& raw) {
    body_ += body_.empty() ? "" : ", ";
    body_ += "\"" + JsonEscape(key) + "\": " + raw;
    return *this;
  }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

class JsonArray {
 public:
  JsonArray& Add(const JsonObject& o) { return AddRaw(o.str()); }
  JsonArray& AddRaw(const std::string& raw) {
    body_ += body_.empty() ? "" : ", ";
    body_ += raw;
    return *this;
  }
  std::string str() const { return "[" + body_ + "]"; }

 private:
  std::string body_;
};

// Writes BENCH_<name>.json into the working directory. Returns false (after
// printing the error) if the file cannot be written, so benches can fail CI.
inline bool WriteBenchJson(const std::string& name, const JsonObject& root) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const std::string text = root.str() + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  std::printf("json summary: %s\n", path.c_str());
  return ok;
}

}  // namespace bench

#endif  // CHIPMUNK_BENCH_BENCH_UTIL_H_
