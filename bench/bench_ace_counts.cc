// Regenerates the §3.4.1 workload-count table: how many workloads ACE
// produces per sequence length and mode. With --json, also emits the table
// as BENCH_ace_counts.json for the CI summary artifact.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const bool json = bench::JsonFlag(argc, argv);
  bench::PrintHeader("ACE workload counts (§3.4.1)");
  using workload::AceOptions;
  using workload::AceWorkloadCount;

  struct Row {
    const char* label;
    AceOptions options;
    const char* paper;
  };
  const Row rows[] = {
      {"seq-1 (PM mode)", AceOptions{.seq = 1}, "56"},
      {"seq-2 (PM mode)", AceOptions{.seq = 2}, "3136"},
      {"seq-3 metadata (PM mode)",
       AceOptions{.seq = 3, .metadata_only = true}, "50650"},
      {"seq-1 (default/fsync mode)", AceOptions{.seq = 1, .weak_mode = true},
       "419"},
      {"seq-2 (default/fsync mode)", AceOptions{.seq = 2, .weak_mode = true},
       "432462"},
  };
  std::printf("%-30s %12s %12s\n", "suite", "this repo", "paper");
  bench::PrintRule();
  for (const Row& row : rows) {
    std::printf("%-30s %12llu %12s\n", row.label,
                static_cast<unsigned long long>(AceWorkloadCount(row.options)),
                row.paper);
  }
  bench::PrintRule();
  std::printf(
      "seq-1 and seq-2 PM-mode counts match the paper exactly (the seq-2\n"
      "count is the full 56^2 cross product). The seq-3-metadata and\n"
      "default-mode counts differ because this ACE uses 28 metadata-op\n"
      "variants (28^3 = 21952 vs the paper's ~37^3) and, in default mode,\n"
      "3 fsync-insertion policies over 56 core + 6 xattr variants; the\n"
      "structure (exhaustive cross products over a fixed vocabulary) is the\n"
      "same.\n");

  // The two suites the paper states exactly must match exactly; the others
  // are recorded for drift detection, not compared.
  const bool pm_counts_match =
      AceWorkloadCount(AceOptions{.seq = 1}) == 56 &&
      AceWorkloadCount(AceOptions{.seq = 2}) == 3136;
  if (!pm_counts_match) {
    std::printf("FAIL: PM-mode seq-1/seq-2 counts diverge from the paper\n");
  }

  if (json) {
    bench::JsonArray suites;
    for (const Row& row : rows) {
      bench::JsonObject suite;
      suite.Put("suite", row.label)
          .Put("count", static_cast<uint64_t>(AceWorkloadCount(row.options)))
          .Put("paper", row.paper);
      suites.Add(suite);
    }
    bench::JsonObject root;
    root.Put("bench", "ace_counts")
        .PutRaw("suites", suites.str())
        .Put("pm_counts_match_paper", pm_counts_match);
    if (!bench::WriteBenchJson("ace_counts", root)) {
      return 1;
    }
  }
  return pm_counts_match ? 0 : 1;
}
