// Regenerates the §3.4.1 workload-count table: how many workloads ACE
// produces per sequence length and mode.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  bench::PrintHeader("ACE workload counts (§3.4.1)");
  using workload::AceOptions;
  using workload::AceWorkloadCount;

  struct Row {
    const char* label;
    AceOptions options;
    const char* paper;
  };
  const Row rows[] = {
      {"seq-1 (PM mode)", AceOptions{.seq = 1}, "56"},
      {"seq-2 (PM mode)", AceOptions{.seq = 2}, "3136"},
      {"seq-3 metadata (PM mode)",
       AceOptions{.seq = 3, .metadata_only = true}, "50650"},
      {"seq-1 (default/fsync mode)", AceOptions{.seq = 1, .weak_mode = true},
       "419"},
      {"seq-2 (default/fsync mode)", AceOptions{.seq = 2, .weak_mode = true},
       "432462"},
  };
  std::printf("%-30s %12s %12s\n", "suite", "this repo", "paper");
  bench::PrintRule();
  for (const Row& row : rows) {
    std::printf("%-30s %12llu %12s\n", row.label,
                static_cast<unsigned long long>(AceWorkloadCount(row.options)),
                row.paper);
  }
  bench::PrintRule();
  std::printf(
      "seq-1 and seq-2 PM-mode counts match the paper exactly (the seq-2\n"
      "count is the full 56^2 cross product). The seq-3-metadata and\n"
      "default-mode counts differ because this ACE uses 28 metadata-op\n"
      "variants (28^3 = 21952 vs the paper's ~37^3) and, in default mode,\n"
      "3 fsync-insertion policies over 56 core + 6 xattr variants; the\n"
      "structure (exhaustive cross products over a fixed vocabulary) is the\n"
      "same.\n");
  return 0;
}
