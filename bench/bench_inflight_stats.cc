// Regenerates the §3.2 measurement that motivates exhaustive subset
// enumeration: "the average number of in-flight writes for metadata
// operations is three and the maximum is 10 in the tested systems."
//
// Runs the full ACE seq-1 suite on every strong-guarantee file system and
// aggregates the in-flight write count observed at every store fence inside
// a syscall, split into metadata operations and data operations.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace {

bool IsDataOp(workload::OpKind kind) {
  return kind == workload::OpKind::kWrite || kind == workload::OpKind::kPwrite ||
         kind == workload::OpKind::kFalloc;
}

struct Agg {
  uint64_t samples = 0;
  uint64_t total = 0;
  uint64_t max = 0;
  void Add(size_t n) {
    ++samples;
    total += n;
    max = std::max<uint64_t>(max, n);
  }
  double mean() const { return samples == 0 ? 0 : double(total) / samples; }
};

}  // namespace

int main() {
  bench::PrintHeader("In-flight writes per store fence (ACE seq-1, §3.2)");
  std::printf("%-14s | %10s %10s %8s | %10s %10s %8s\n", "fs", "meta-mean",
              "meta-max", "samples", "data-mean", "data-max", "samples");
  bench::PrintRule();

  Agg all_meta;
  for (const char* fs :
       {"novafs", "novafs-fortis", "pmfs", "winefs", "splitfs"}) {
    auto config = chipmunk::MakeFsConfig(fs, {}, bench::kDeviceSize);
    chipmunk::Harness harness(*config);
    Agg meta;
    Agg data;
    workload::ForEachAceWorkload(
        workload::AceOptions{.seq = 1}, [&](const workload::Workload& w) {
          auto stats = harness.TestWorkload(w);
          if (!stats.ok()) {
            return true;
          }
          for (const chipmunk::InflightSample& sample : stats->inflight) {
            const workload::Op& op = w.ops[sample.syscall_index];
            if (IsDataOp(op.kind)) {
              data.Add(sample.writes);
            } else {
              meta.Add(sample.writes);
              all_meta.Add(sample.writes);
            }
          }
          return true;
        });
    std::printf("%-14s | %10.2f %10llu %8llu | %10.2f %10llu %8llu\n", fs,
                meta.mean(), static_cast<unsigned long long>(meta.max),
                static_cast<unsigned long long>(meta.samples), data.mean(),
                static_cast<unsigned long long>(data.max),
                static_cast<unsigned long long>(data.samples));
  }
  bench::PrintRule();
  std::printf(
      "All systems, metadata ops: mean %.2f, max %llu in-flight writes per\n"
      "fence (paper: average 3, maximum 10 — small enough for exhaustive\n"
      "subset enumeration at metadata crash points).\n",
      all_meta.mean(), static_cast<unsigned long long>(all_meta.max));
  return 0;
}
