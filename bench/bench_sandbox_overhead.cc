// Recovery-sandbox overhead: crash-states/sec over the trigger-workload
// suite with the op-budget watchdog on (the 1M default) vs off (budget 0),
// at 1 and 4 replay workers. The watchdog adds one hook dispatch and a
// counter increment per media operation; the target is < 10% throughput
// loss at jobs 4. Also cross-checks that the sandbox setting does not
// change the report list on well-behaved file systems.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

struct Row {
  size_t jobs;
  uint64_t budget;
  uint64_t crash_states = 0;
  double seconds = 0;
  std::vector<std::string> signatures;  // sorted, across the whole suite
};

Row RunSuite(size_t jobs, uint64_t budget) {
  Row row;
  row.jobs = jobs;
  row.budget = budget;
  chipmunk::HarnessOptions options;
  options.jobs = jobs;
  options.sandbox_op_budget = budget;
  std::vector<chipmunk::FsConfig> configs;
  for (const char* fs : {"novafs", "pmfs", "winefs"}) {
    auto config = chipmunk::MakeFsConfig(fs, {}, bench::kDeviceSize);
    if (config.ok()) {
      configs.push_back(*config);
    }
  }
  auto buggy = chipmunk::MakeBugConfig(vfs::BugId::kNova4RenameInPlaceDelete,
                                       bench::kDeviceSize);
  if (buggy.ok()) {
    configs.push_back(*buggy);
  }

  const auto workloads = trigger::AllTriggerWorkloads();
  auto start = std::chrono::steady_clock::now();
  for (const chipmunk::FsConfig& config : configs) {
    chipmunk::Harness harness(config, options);
    for (const workload::Workload& w : workloads) {
      auto stats = harness.TestWorkload(w);
      if (!stats.ok()) {
        continue;
      }
      row.crash_states += stats->crash_states;
      for (const chipmunk::BugReport& r : stats->reports) {
        row.signatures.push_back(r.Signature());
      }
    }
  }
  auto end = std::chrono::steady_clock::now();
  row.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  std::sort(row.signatures.begin(), row.signatures.end());
  return row;
}

}  // namespace

int main() {
  bench::PrintHeader("Recovery sandbox: watchdog overhead (on=1M budget, off=0)");
  std::printf("%-6s %-8s %14s %10s %14s %10s\n", "jobs", "sandbox",
              "crash states", "time(s)", "states/sec", "overhead");
  bench::PrintRule();

  bool identical = true;
  bool within_target = true;
  for (size_t jobs : {1u, 4u}) {
    Row off = RunSuite(jobs, 0);
    Row on = RunSuite(jobs, 1'000'000);
    const double overhead = on.seconds / off.seconds - 1.0;
    for (const Row* row : {&off, &on}) {
      std::printf("%-6zu %-8s %14llu %10.2f %14.0f %9.1f%%\n", row->jobs,
                  row->budget == 0 ? "off" : "on",
                  static_cast<unsigned long long>(row->crash_states),
                  row->seconds, row->crash_states / row->seconds,
                  row == &on ? 100.0 * overhead : 0.0);
    }
    identical = identical && on.crash_states == off.crash_states &&
                on.signatures == off.signatures;
    if (jobs == 4 && overhead >= 0.10) {
      within_target = false;
    }
  }
  bench::PrintRule();
  std::printf("reports %s between sandbox on/off; jobs-4 overhead %s the "
              "10%% target\n",
              identical ? "identical" : "DIFFER",
              within_target ? "within" : "ABOVE");
  return identical ? 0 : 1;
}
