// Regenerates Observation 7's cap sweep: how large must the per-crash-state
// replay cap be to expose each bug, and how much checking does a small cap
// save? The paper: a cap of two finds every bug; a cap of five covers all
// crash states for most system calls.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"

int main() {
  bench::PrintHeader("Observation 7: replay-cap sweep");

  const std::vector<size_t> caps = {1, 2, 5};
  std::printf("%-6s %-22s", "Bug", "trigger");
  for (size_t cap : caps) {
    std::printf("  cap=%zu", cap);
  }
  std::printf("  min-cap\n");
  bench::PrintRule();

  std::map<size_t, int> found_at_cap;
  int total = 0;
  for (const vfs::BugInfo& info : vfs::AllBugs()) {
    ++total;
    std::printf("%-6d %-22s", static_cast<int>(info.id),
                trigger::TriggerFor(info.id));
    size_t min_cap = 0;
    for (size_t cap : caps) {
      chipmunk::HarnessOptions opts;
      opts.replay_cap = cap;
      opts.stop_at_first_report = true;
      bool found = bench::RunTrigger(info.id, opts).has_value();
      std::printf("  %5s", found ? "yes" : "no");
      if (found && min_cap == 0) {
        min_cap = cap;
      }
    }
    if (min_cap != 0) {
      ++found_at_cap[min_cap];
    }
    std::printf("  %7zu\n", min_cap);
  }
  bench::PrintRule();
  std::printf("Bugs first exposed at cap 1: %d, cap 2: %d, cap 5: %d "
              "(of %d rows).\n",
              found_at_cap[1], found_at_cap[2], found_at_cap[5], total);

  // Cost side: crash states checked across the trigger suite per cap.
  std::printf("\nCrash states checked across all trigger workloads (novafs):\n");
  auto config = chipmunk::MakeFsConfig("novafs", {}, bench::kDeviceSize);
  for (size_t cap : {size_t{1}, size_t{2}, size_t{5}, size_t{0}}) {
    chipmunk::HarnessOptions opts;
    opts.replay_cap = cap;
    chipmunk::Harness harness(*config, opts);
    uint64_t states = 0;
    for (const workload::Workload& w : trigger::AllTriggerWorkloads()) {
      auto stats = harness.TestWorkload(w);
      if (stats.ok()) {
        states += stats->crash_states;
      }
    }
    std::printf("  cap=%-9s -> %8llu crash states\n",
                cap == 0 ? "unlimited" : std::to_string(cap).c_str(),
                static_cast<unsigned long long>(states));
  }
  std::printf(
      "\nPaper: 10 of the 11 mid-syscall bugs need a single replayed write,\n"
      "one needs two; a cap of two finds every bug in the corpus.\n");
  return 0;
}
