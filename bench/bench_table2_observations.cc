// Regenerates Table 2: observations about the nature of the bugs, with the
// measurable columns measured.
//
//   - "logic vs PM" comes from the bug catalog (Table 1's Type column);
//   - "requires a crash during the system call" is *measured*: the trigger
//     workload is re-run with mid-syscall crash points disabled; bugs that
//     disappear require mid-syscall crashes (Observation 5);
//   - "exposed by replaying few writes" is *measured* with a replay-cap
//     sweep (Observation 7);
//   - "short workloads suffice" is *measured* as the core-op count of the
//     shortest detecting workload (Observation 6);
//   - the design-provenance rows (in-place updates, volatile-state rebuild,
//     resilience features) restate the mechanism each injected defect lives
//     in (DESIGN.md's bug table).
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "bench/bench_util.h"

namespace {

std::string JoinBugs(const std::set<int>& bugs) {
  std::string out;
  for (int b : bugs) {
    out += (out.empty() ? "" : ", ") + std::to_string(b);
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("Table 2: observations and associated bugs");

  std::set<int> logic_bugs;
  std::set<int> mid_syscall_bugs;
  std::set<int> few_writes_bugs;  // detected replaying <= 2 in-flight units
  std::set<int> short_workload_bugs;
  std::map<int, size_t> min_cap;

  for (const vfs::BugInfo& info : vfs::AllBugs()) {
    int id = static_cast<int>(info.id);
    if (info.type == vfs::BugType::kLogic) {
      logic_bugs.insert(id);
    }

    // Measure: detectable without mid-syscall crash points?
    chipmunk::HarnessOptions post_only;
    post_only.replay_cap = 2;
    post_only.stop_at_first_report = true;
    post_only.check_mid_syscall = false;
    const bool post_detects = bench::RunTrigger(info.id, post_only).has_value();
    chipmunk::HarnessOptions full;
    full.replay_cap = 2;
    full.stop_at_first_report = true;
    const bool full_detects = bench::RunTrigger(info.id, full).has_value();
    if (full_detects && !post_detects) {
      mid_syscall_bugs.insert(id);
    }

    // Measure: smallest replay cap that exposes the bug.
    for (size_t cap : {1, 2, 5}) {
      chipmunk::HarnessOptions capped = full;
      capped.replay_cap = cap;
      if (bench::RunTrigger(info.id, capped).has_value()) {
        min_cap[id] = cap;
        if (cap <= 2) {
          few_writes_bugs.insert(id);
        }
        break;
      }
    }

    // Measure: shortest detecting trigger (core-op count).
    auto workloads = trigger::AllTriggerWorkloads();
    const workload::Workload* w =
        trigger::FindWorkload(workloads, trigger::TriggerFor(info.id));
    if (w != nullptr && full_detects) {
      size_t core = 0;
      for (const auto& op : w->ops) {
        if (!op.setup && op.kind != workload::OpKind::kOpen &&
            op.kind != workload::OpKind::kClose) {
          ++core;
        }
      }
      if (core <= 3) {
        short_workload_bugs.insert(id);
      }
    }
  }

  struct Row {
    const char* observation;
    std::string bugs;
    const char* paper;
  };
  const std::vector<Row> rows = {
      {"Many bugs are logic/design issues, not PM programming errors",
       JoinBugs(logic_bugs), "1, 3-8, 10-13, 16, 19, 20, 21-25"},
      {"The complexity of in-place updates leads to bugs (by mechanism)",
       "4, 5, 6, 14, 15, 20", "4-7, 14, 15"},
      {"Recovery rebuilding in-DRAM state is a significant bug source (by "
       "mechanism)",
       "1, 3, 7, 11, 13, 16, 19, 24, 25", "1, 3, 7, 11, 13, 16, 19, 24, 25"},
      {"Resilience mechanisms can introduce crash-consistency bugs (by "
       "mechanism)",
       "2, 9, 10, 11, 12", "2, 9-12"},
      {"Many bugs require simulating crashes during system calls (measured)",
       JoinBugs(mid_syscall_bugs), "3-6, 9-13, 19, 20"},
      {"Short workloads (<=3 core ops) suffice (measured)",
       JoinBugs(short_workload_bugs), "1-6, 9-20, 21-25"},
      {"Bugs exposed by replaying few (<=2) writes onto persistent state "
       "(measured)",
       JoinBugs(few_writes_bugs), "3-6, 9-13, 19, 20"},
  };
  for (const Row& row : rows) {
    std::printf("%s\n  measured: %s\n  paper:    %s\n\n", row.observation,
                row.bugs.c_str(), row.paper);
  }

  std::printf("Minimum replay cap per bug (Observation 7):\n  ");
  for (const auto& [id, cap] : min_cap) {
    std::printf("%d:%zu  ", id, cap);
  }
  std::printf(
      "\n(paper: of the mid-syscall bugs, all but one are exposed replaying\n"
      "a single write; a cap of two suffices for every bug)\n");
  return 0;
}
