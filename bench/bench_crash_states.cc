// Regenerates the §4.3 runtime observations: ACE seq-1 suite runtime per
// file system and the number of crash states checked, which "varies as much
// as 3x between file systems, with PMFS generally checking the most and
// WineFS checking the fewest."
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const bool json = bench::JsonFlag(argc, argv);
  bench::PrintHeader("ACE seq-1 sweep: crash states and runtime per FS (§4.3)");
  std::printf("%-14s %10s %14s %14s %12s %9s\n", "fs", "workloads",
              "crash points", "crash states", "reports", "time(ms)");
  bench::PrintRule();

  struct RowOut {
    std::string fs;
    uint64_t states;
  };
  std::vector<RowOut> rows;
  bench::JsonArray json_rows;
  for (const char* fs :
       {"novafs", "novafs-fortis", "pmfs", "winefs", "ext4dax", "xfsdax",
        "splitfs"}) {
    const std::string name = fs;
    const bool weak = name == "ext4dax" || name == "xfsdax";
    auto config = chipmunk::MakeFsConfig(fs, {}, bench::kDeviceSize);
    chipmunk::Harness harness(*config);
    uint64_t workloads = 0;
    uint64_t points = 0;
    uint64_t states = 0;
    uint64_t reports = 0;
    auto start = std::chrono::steady_clock::now();
    workload::AceOptions options;
    options.seq = 1;
    options.weak_mode = weak;
    workload::ForEachAceWorkload(options, [&](const workload::Workload& w) {
      auto stats = harness.TestWorkload(w);
      if (stats.ok()) {
        ++workloads;
        points += stats->crash_points;
        states += stats->crash_states;
        reports += stats->reports.size();
      }
      return true;
    });
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
            .count() *
        1e3;
    std::printf("%-14s %10llu %14llu %14llu %12llu %9.1f\n", fs,
                static_cast<unsigned long long>(workloads),
                static_cast<unsigned long long>(points),
                static_cast<unsigned long long>(states),
                static_cast<unsigned long long>(reports), ms);
    if (!weak) {
      rows.push_back(RowOut{fs, states});
    }
    json_rows.Add(bench::JsonObject()
                      .Put("fs", name)
                      .Put("weak", weak)
                      .Put("workloads", workloads)
                      .Put("crash_points", points)
                      .Put("crash_states", states)
                      .Put("reports", reports)
                      .Put("ms", ms));
  }
  bench::PrintRule();
  auto minmax = std::minmax_element(
      rows.begin(), rows.end(),
      [](const RowOut& a, const RowOut& b) { return a.states < b.states; });
  std::printf(
      "Strong-guarantee systems: %s checks the most crash states, %s the\n"
      "fewest — a %.1fx spread. The fortis configuration is the outlier\n"
      "because it journals replica and checksum words on every commit;\n"
      "excluding it the spread across the base systems is modest (paper:\n"
      "up to 3x between systems, PMFS most, WineFS fewest). All file\n"
      "systems are bug-free here, so the expected report count is 0.\n",
      minmax.second->fs.c_str(), minmax.first->fs.c_str(),
      static_cast<double>(minmax.second->states) /
          static_cast<double>(minmax.first->states));
  if (json) {
    bench::JsonObject root;
    root.Put("bench", "crash_states")
        .PutRaw("rows", json_rows.str())
        .Put("strong_most", minmax.second->fs)
        .Put("strong_fewest", minmax.first->fs)
        .Put("strong_spread", static_cast<double>(minmax.second->states) /
                                  static_cast<double>(minmax.first->states));
    if (!bench::WriteBenchJson("crash_states", root)) {
      return 1;
    }
  }
  return 0;
}
