// Pipelined fuzzing throughput: workloads/sec over the full
// record → oracle → replay pipeline at 1/2/4/8 fuzz workers, plus a
// cross-check that every --fuzz-jobs setting produces the identical
// FuzzResult (the engine's determinism guarantee: only the wall/CPU fields
// may vary). Speedup is bounded by the hardware thread count printed in the
// header — on a single-core host all rows measure the (small) overhead of
// the pipeline queue rather than any parallelism.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/fs_registry.h"
#include "src/fuzz/fuzz_engine.h"

namespace {

struct Row {
  size_t jobs;
  fuzz::FuzzResult result;
};

Row RunFuzz(const chipmunk::FsConfig& config, size_t jobs) {
  Row row;
  row.jobs = jobs;
  fuzz::FuzzOptions options;
  options.seed = 7;
  options.iterations = 150;
  options.jobs = jobs;
  fuzz::FuzzEngine engine(config, options);
  row.result = engine.Run();
  return row;
}

// The determinism contract, minus the time fields.
bool SameDeterministicFields(const fuzz::FuzzResult& a,
                             const fuzz::FuzzResult& b) {
  if (a.executed != b.executed || a.corpus_size != b.corpus_size ||
      a.coverage_points != b.coverage_points ||
      a.crash_states != b.crash_states || a.lint_findings != b.lint_findings ||
      a.lint_rule_counts != b.lint_rule_counts ||
      a.unique_reports.size() != b.unique_reports.size() ||
      a.timeline.size() != b.timeline.size()) {
    return false;
  }
  for (size_t i = 0; i < a.unique_reports.size(); ++i) {
    if (a.unique_reports[i].Signature() != b.unique_reports[i].Signature()) {
      return false;
    }
  }
  for (size_t i = 0; i < a.timeline.size(); ++i) {
    if (a.timeline[i].ordinal != b.timeline[i].ordinal ||
        a.timeline[i].signature != b.timeline[i].signature) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::JsonFlag(argc, argv);
  bench::PrintHeader("Pipelined fuzzing: workloads/sec vs fuzz worker count");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());

  // A buggy target so the report/dedup/timeline paths are part of what is
  // cross-checked, not just the clean corpus path.
  auto config = chipmunk::MakeBugConfig(vfs::BugId::kNova4RenameInPlaceDelete,
                                        bench::kDeviceSize);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  std::printf("%-6s %10s %10s %10s %10s %14s %9s\n", "jobs", "executed",
              "reports", "wall(s)", "cpu(s)", "workloads/sec", "speedup");
  bench::PrintRule();
  std::vector<Row> rows;
  for (size_t jobs : {1, 2, 4, 8}) {
    rows.push_back(RunFuzz(*config, jobs));
    const Row& row = rows.back();
    std::printf("%-6zu %10zu %10zu %10.2f %10.2f %14.1f %8.2fx\n", row.jobs,
                row.result.executed, row.result.unique_reports.size(),
                row.result.wall_seconds, row.result.cpu_seconds,
                row.result.executed / row.result.wall_seconds,
                rows.front().result.wall_seconds / row.result.wall_seconds);
  }
  bench::PrintRule();

  bool identical = true;
  for (const Row& row : rows) {
    if (!SameDeterministicFields(row.result, rows.front().result)) {
      identical = false;
      std::printf("MISMATCH at fuzz-jobs=%zu: %zu executed, %zu reports, "
                  "%zu crash states\n",
                  row.jobs, row.result.executed,
                  row.result.unique_reports.size(), row.result.crash_states);
    }
  }
  std::printf("FuzzResults %s across fuzz-jobs settings\n",
              identical ? "identical" : "DIFFER");

  if (json) {
    bench::JsonArray out_rows;
    for (const Row& row : rows) {
      out_rows.Add(bench::JsonObject()
                       .Put("jobs", static_cast<uint64_t>(row.jobs))
                       .Put("executed",
                            static_cast<uint64_t>(row.result.executed))
                       .Put("reports", static_cast<uint64_t>(
                                           row.result.unique_reports.size()))
                       .Put("crash_states",
                            static_cast<uint64_t>(row.result.crash_states))
                       .Put("wall_seconds", row.result.wall_seconds)
                       .Put("cpu_seconds", row.result.cpu_seconds)
                       .Put("workloads_per_sec",
                            row.result.executed / row.result.wall_seconds));
    }
    bench::JsonObject root;
    root.Put("bench", "fuzz_throughput")
        .Put("hardware_threads",
             static_cast<uint64_t>(std::thread::hardware_concurrency()))
        .PutRaw("rows", out_rows.str())
        .Put("deterministic_across_jobs", identical);
    if (!bench::WriteBenchJson("fuzz_throughput", root)) {
      return 1;
    }
  }
  return identical ? 0 : 1;
}
