// Concurrency benchmark and safety gate for the isolation oracle.
//
// Three sections, all feeding the exit code:
//   1. Detection — the two seeded cross-thread bugs (winefs 27, torn
//      cross-CPU journal commit; novafs 28, DRAM-index-vs-media race) must
//      be detected as isolation violations with the oracle on, and — the
//      claim that makes them concurrency bugs — must pass every
//      single-threaded check with the oracle off.
//   2. Regression — every pre-existing seeded bug (unique fixes 1..26) must
//      still be detected through its trigger workload with the oracle
//      enabled: concurrency support cannot change single-threaded verdicts.
//   3. Overhead — each conflict template realized on a fixed file system is
//      replayed with the oracle off and on; the table reports the wall
//      ratio plus the linearization image counts that drive it.
//
// --json writes BENCH_concurrent.json next to the tables for CI archiving.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/concurrency/templates.h"
#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/vfs/bug.h"

namespace {

struct OracleRun {
  bool found = false;
  bool isolation = false;  // some report has kind isolation-violation
  std::string kind;
};

OracleRun RunWithOracle(vfs::BugId bug, bool isolation_oracle) {
  chipmunk::HarnessOptions opts;
  opts.isolation_oracle = isolation_oracle;
  OracleRun run;
  auto report = bench::RunTrigger(bug, opts);
  if (report.has_value()) {
    run.found = true;
    run.isolation = report->kind == chipmunk::CheckKind::kIsolationViolation;
    run.kind = chipmunk::CheckKindName(report->kind);
  }
  return run;
}

double Seconds(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::JsonFlag(argc, argv);
  bool ok = true;

  // --- 1. Detection gate ---------------------------------------------------
  const vfs::BugId kSeeded[] = {vfs::BugId::kWinefs27TornHandoffCommit,
                                vfs::BugId::kNova28DramMediaRace};
  std::printf("seeded concurrency bugs\n");
  std::printf("%-6s %-8s %-22s %-14s\n", "bug", "fs", "with-oracle",
              "without-oracle");
  bench::JsonArray detection;
  for (const vfs::BugId bug : kSeeded) {
    const vfs::BugInfo* info = vfs::FindBug(bug);
    const OracleRun with = RunWithOracle(bug, true);
    const OracleRun without = RunWithOracle(bug, false);
    // Detected as an isolation violation with the oracle, invisible to the
    // single-threaded checks without it.
    const bool row_ok = with.found && with.isolation && !without.found;
    ok = ok && row_ok;
    std::printf("%-6d %-8s %-22s %-14s%s\n", static_cast<int>(bug), info->fs,
                with.found ? with.kind.c_str() : "MISSED",
                without.found ? without.kind.c_str() : "clean",
                row_ok ? "" : "  <-- GATE FAILED");
    detection.Add(bench::JsonObject()
                      .Put("bug", static_cast<uint64_t>(bug))
                      .Put("fs", info->fs)
                      .Put("detected_with_oracle", with.found)
                      .Put("kind", with.kind)
                      .Put("detected_without_oracle", without.found)
                      .Put("ok", row_ok));
  }

  // --- 2. Regression gate --------------------------------------------------
  std::map<int, bool> unique_found;
  chipmunk::HarnessOptions default_opts;  // oracle enabled (the default)
  for (const vfs::BugInfo& info : vfs::AllBugs()) {
    if (info.unique_bug >= 27) {
      continue;  // the seeded concurrency bugs own section 1
    }
    if (unique_found.count(info.unique_bug)) {
      continue;  // shared-fix rows (14/15, 17/18) need one detection
    }
    unique_found[info.unique_bug] =
        bench::RunTrigger(info.id, default_opts).has_value();
  }
  size_t detected = 0;
  for (const auto& [bug, found] : unique_found) {
    detected += found ? 1 : 0;
    if (!found) {
      std::printf("regression: unique bug %d no longer detected\n", bug);
    }
  }
  ok = ok && detected == unique_found.size();
  std::printf("\nregression gate: %zu of %zu pre-existing bugs detected "
              "with the oracle enabled\n",
              detected, unique_found.size());

  // --- 3. Overhead ---------------------------------------------------------
  std::printf("\nisolation-oracle overhead (novafs, clean)\n");
  std::printf("%-22s %9s %9s %7s %8s %10s\n", "template", "base-s",
              "oracle-s", "ratio", "images", "image-runs");
  bench::JsonArray overhead;
  auto config = chipmunk::MakeFsConfig("novafs", vfs::BugSet{},
                                       bench::kDeviceSize);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  uint64_t ordinal = 0;
  for (const auto& t : concurrency::ConflictTemplates()) {
    const workload::Workload w =
        concurrency::RealizeTemplate(t, /*schedule_seed=*/5, ordinal++);

    chipmunk::HarnessOptions off;
    off.isolation_oracle = false;
    chipmunk::Harness base_harness(*config, off);
    const auto base_begin = std::chrono::steady_clock::now();
    auto base = base_harness.TestWorkload(w);
    const double base_s = Seconds(base_begin);

    chipmunk::Harness oracle_harness(*config, chipmunk::HarnessOptions{});
    const auto oracle_begin = std::chrono::steady_clock::now();
    auto oracle = oracle_harness.TestWorkload(w);
    const double oracle_s = Seconds(oracle_begin);

    if (!base.ok() || !oracle.ok()) {
      std::fprintf(stderr, "%s: replay failed\n", t.name);
      ok = false;
      continue;
    }
    // The oracle must stay silent on a correct file system, at any cost.
    if (!oracle->reports.empty()) {
      std::printf("%s: false positive on clean fs  <-- GATE FAILED\n",
                  t.name);
      ok = false;
    }
    const double ratio = base_s > 0 ? oracle_s / base_s : 0;
    std::printf("%-22s %9.4f %9.4f %6.2fx %8zu %10zu\n", t.name, base_s,
                oracle_s, ratio, oracle->lin_images, oracle->lin_image_runs);
    overhead.Add(bench::JsonObject()
                     .Put("template", t.name)
                     .Put("base_seconds", base_s)
                     .Put("oracle_seconds", oracle_s)
                     .Put("lin_images", static_cast<uint64_t>(
                                            oracle->lin_images))
                     .Put("lin_image_runs", static_cast<uint64_t>(
                                                oracle->lin_image_runs))
                     .Put("clean", oracle->reports.empty()));
  }

  std::printf("\n%s\n", ok ? "all gates passed" : "GATE FAILURES above");
  if (json) {
    bench::JsonObject root;
    root.PutRaw("detection", detection.str())
        .PutRaw("overhead", overhead.str())
        .Put("regressions_checked",
             static_cast<uint64_t>(unique_found.size()))
        .Put("regressions_detected", static_cast<uint64_t>(detected))
        .Put("ok", ok);
    if (!bench::WriteBenchJson("concurrent", root)) {
      return 1;
    }
  }
  return ok ? 0 : 1;
}
