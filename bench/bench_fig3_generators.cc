// Regenerates Figure 3: cumulative CPU time for ACE and the fuzzer to find
// the bug corpus.
//
// For every unique bug (shared PMFS/WineFS rows counted once, like the
// paper's 23), both generators search for it from scratch:
//   - ACE streams seq-1 -> seq-2 -> seq-3-metadata (budgeted);
//   - the fuzzer runs its generate/mutate loop (budgeted).
// Per-generator discovery times are then sorted ascending and accumulated,
// which is exactly the curve Figure 3 plots. The paper's shape to reproduce:
// ACE finds the ACE-reachable bugs quickly but never finds four of them; the
// fuzzer eventually finds all bugs but spends considerably more CPU time.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/fuzz/fuzz_engine.h"

int main() {
  bench::PrintHeader("Figure 3: cumulative time to find bugs, ACE vs fuzzer");

  chipmunk::HarnessOptions opts;
  opts.replay_cap = 2;
  opts.stop_at_first_report = true;

  // One representative BugId per unique bug number.
  std::map<int, vfs::BugId> unique;
  for (const vfs::BugInfo& info : vfs::AllBugs()) {
    if (info.unique_bug >= 27) {
      // Concurrency seeds need multi-threaded workloads; the single-threaded
      // generators compared here cannot reach them (bench_concurrent covers
      // that detection gate).
      continue;
    }
    unique.emplace(info.unique_bug, info.id);
  }

  std::vector<double> ace_times;
  std::vector<double> fuzz_times;
  int ace_missed = 0;
  std::printf("%-6s %-26s %12s %12s\n", "Bug", "trigger mechanism", "ACE(s)",
              "fuzzer(s)");
  bench::PrintRule();
  for (const auto& [bug_no, bug_id] : unique) {
    auto config = chipmunk::MakeBugConfig(bug_id, bench::kDeviceSize);
    if (!config.ok()) {
      continue;
    }
    // ACE search.
    bench::SearchResult ace = bench::AceSearch(*config, opts, /*seq3=*/2000);
    if (ace.found) {
      ace_times.push_back(ace.cpu_seconds);
    } else {
      ++ace_missed;
    }
    // Fuzzer search.
    fuzz::FuzzOptions fopts;
    fopts.seed = 99;
    fopts.harness = opts;
    fuzz::FuzzEngine fuzzer(*config, fopts);
    bool fuzz_found = false;
    for (int i = 0; i < 12000 && !fuzz_found; ++i) {
      fuzz_found = fuzzer.Step() > 0;
    }
    if (fuzz_found) {
      fuzz_times.push_back(fuzzer.cpu_seconds());
    }
    std::printf("%-6d %-26s %12s %12s\n", bug_no,
                trigger::TriggerFor(bug_id),
                ace.found ? std::to_string(ace.cpu_seconds).c_str() : "miss",
                fuzz_found ? std::to_string(fuzzer.cpu_seconds()).c_str()
                           : "miss");
  }
  bench::PrintRule();

  std::sort(ace_times.begin(), ace_times.end());
  std::sort(fuzz_times.begin(), fuzz_times.end());
  std::printf("\nCumulative series (k-th bug found -> total CPU seconds):\n");
  std::printf("%-6s %14s %14s\n", "#bugs", "ACE cum(s)", "fuzzer cum(s)");
  double ace_cum = 0;
  double fuzz_cum = 0;
  size_t rows = std::max(ace_times.size(), fuzz_times.size());
  for (size_t k = 0; k < rows; ++k) {
    std::string ace_cell = "-";
    if (k < ace_times.size()) {
      ace_cum += ace_times[k];
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", ace_cum);
      ace_cell = buf;
    }
    std::string fuzz_cell = "-";
    if (k < fuzz_times.size()) {
      fuzz_cum += fuzz_times[k];
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", fuzz_cum);
      fuzz_cell = buf;
    }
    std::printf("%-6zu %14s %14s\n", k + 1, ace_cell.c_str(),
                fuzz_cell.c_str());
  }
  std::printf(
      "\nACE found %zu/%zu unique bugs (missed %d: the fuzzer-only shapes);\n"
      "the fuzzer found %zu/%zu. Cumulative CPU over all searches: ACE\n"
      "%.2fs, fuzzer %.2fs.\n"
      "Paper: ACE finds 19/23 in under 3 CPU hours and misses 4; Syzkaller\n"
      "finds all 23 but takes ~6-20x more CPU time on the shared bugs.\n",
      ace_times.size(), unique.size(), ace_missed, fuzz_times.size(),
      unique.size(), ace_cum, fuzz_cum);
  return 0;
}
